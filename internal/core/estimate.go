package core

import (
	"context"
	"fmt"
	"math"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
)

// EstimateUnOptions configures Algorithm 4.
type EstimateUnOptions struct {
	// Perr is the probability that a naïve worker errs on an
	// under-threshold comparison (Assumption 2 of Section 4.4). It can
	// itself be estimated from consensus data with EstimatePerr.
	Perr float64
	// C tunes the confidence of the returned upper bound (the constant c
	// in Algorithm 4's "c·ln n" floor); defaults to 1.
	C float64
	// N is the size of the actual dataset the estimate will be used on;
	// the training-set count is scaled by N/|training| (Assumption 1).
	N int
}

// EstimateUn is Algorithm 4: it estimates an upper bound on un(N) from a
// training set whose maximum is known (gold data). Every training element is
// compared once against the training maximum by a naïve worker; under
// Assumption 2, elements within δn of the maximum err with probability Perr,
// so 2·#errors/Perr upper-bounds un(n̂) w.h.p., and the count is scaled to
// the target size N under Assumption 1. The returned estimate is always at
// least 1.
//
// Overestimates only increase cost; underestimates may lose the maximum
// (Section 5.2 quantifies both).
func EstimateUn(ctx context.Context, training []item.Item, naive *tournament.Oracle, opt EstimateUnOptions) (int, error) {
	nhat := len(training)
	if nhat == 0 {
		return 0, ErrNoItems
	}
	if opt.Perr <= 0 || opt.Perr >= 1 {
		return 0, fmt.Errorf("core: EstimateUn requires perr in (0,1), got %g", opt.Perr)
	}
	if opt.N <= 0 {
		return 0, fmt.Errorf("core: EstimateUn requires target size N ≥ 1, got %d", opt.N)
	}
	c := opt.C
	if c <= 0 {
		c = 1
	}

	// Locate the training maximum M̂ (known ground truth for gold data).
	mhat := training[0]
	for _, it := range training[1:] {
		if it.Value > mhat.Value {
			mhat = it
		}
	}

	errCount := 0
	for _, x := range training {
		if x.ID == mhat.ID {
			continue
		}
		// The worker "made an error" iff it preferred the element with
		// the lower value over the known maximum.
		w, err := naive.Compare(ctx, x, mhat)
		if err != nil {
			return 0, err
		}
		if w.ID != mhat.ID {
			errCount++
		}
	}

	bound := math.Max(c*math.Log(float64(opt.N)), 2*float64(errCount)/opt.Perr)
	est := int(math.Ceil(float64(opt.N) / float64(nhat) * bound))
	if est < 1 {
		est = 1
	}
	return est, nil
}

// EstimatePerrOptions configures EstimatePerr.
type EstimatePerrOptions struct {
	// Pairs is the number of random training pairs to probe; defaults
	// to 50.
	Pairs int
	// Votes is the number of independent workers asked per pair;
	// defaults to 7.
	Votes int
	// R drives the pair sampling. Required.
	R *rng.Source
}

// EstimatePerr implements the Section 4.4 procedure for estimating perr from
// training data: random pairs are each judged by several independent naïve
// workers; unanimous pairs are taken to be above the threshold and excluded;
// on the remaining (presumed under-threshold) pairs the empirical rate of
// wrong answers estimates perr. The oracle must not be memoized, since the
// procedure relies on repeated independent answers to the same pair.
//
// It returns an error if the training set has fewer than two elements, and
// falls back to 0.5 (the uninformative prior) when every probed pair is
// unanimous.
func EstimatePerr(ctx context.Context, training []item.Item, naive *tournament.Oracle, opt EstimatePerrOptions) (float64, error) {
	if len(training) < 2 {
		return 0, fmt.Errorf("core: EstimatePerr needs at least 2 training elements, got %d", len(training))
	}
	if opt.R == nil {
		return 0, errNilRNG
	}
	pairs := opt.Pairs
	if pairs <= 0 {
		pairs = 50
	}
	votes := opt.Votes
	if votes <= 0 {
		votes = 7
	}

	wrong, total := 0, 0
	for p := 0; p < pairs; p++ {
		i := opt.R.Intn(len(training))
		j := opt.R.Intn(len(training) - 1)
		if j >= i {
			j++
		}
		a, b := training[i], training[j]
		hi := a
		if b.Value > a.Value {
			hi = b
		}
		wins := 0
		for v := 0; v < votes; v++ {
			w, err := naive.Compare(ctx, a, b)
			if err != nil {
				return 0, err
			}
			if w.ID == hi.ID {
				wins++
			}
		}
		if wins == votes || wins == 0 {
			// Consensus: presumed above threshold, uninformative for perr.
			continue
		}
		wrong += votes - wins
		total += votes
	}
	if total == 0 {
		return 0.5, nil
	}
	return float64(wrong) / float64(total), nil
}
