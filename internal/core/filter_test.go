package core

import (
	"context"
	"testing"
	"testing/quick"

	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// naiveOracle builds a T(δ, 0) oracle with the given tie policy.
func naiveOracle(delta float64, tie worker.TieBreaker, l *cost.Ledger, r *rng.Source) *tournament.Oracle {
	w := &worker.Threshold{Delta: delta, Tie: tie, R: r}
	return tournament.NewOracle(w, worker.Naive, l, nil)
}

func TestFilterValidation(t *testing.T) {
	r := rng.New(1)
	o := naiveOracle(0, worker.RandomTie{R: r}, nil, r)
	if _, err := Filter(context.Background(), nil, o, FilterOptions{Un: 1}); err == nil {
		t.Fatal("empty input accepted")
	}
	s := dataset.Uniform(10, 0, 1, r)
	if _, err := Filter(context.Background(), s.Items(), o, FilterOptions{Un: 0}); err == nil {
		t.Fatal("un=0 accepted")
	}
}

func TestFilterSmallInputPassesThrough(t *testing.T) {
	r := rng.New(2)
	l := cost.NewLedger()
	o := naiveOracle(0.1, worker.RandomTie{R: r}, l, r)
	s := dataset.Uniform(5, 0, 1, r)
	// un = 3 → 2·un = 6 > 5: no filtering possible or needed.
	out, err := Filter(context.Background(), s.Items(), o, FilterOptions{Un: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("|S| = %d, want 5", len(out))
	}
	if l.Naive() != 0 {
		t.Fatalf("%d comparisons on pass-through input", l.Naive())
	}
}

func TestFilterKeepsMaxAndRespectsBounds(t *testing.T) {
	root := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		r := root.ChildN("trial", trial)
		n := 200 + r.Intn(800)
		un := 2 + r.Intn(12)
		cal, err := dataset.UniformCalibrated(n, un, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		l := cost.NewLedger()
		o := naiveOracle(cal.DeltaN, worker.RandomTie{R: r}, l, r)
		out, err := Filter(context.Background(), cal.Set.Items(), o, FilterOptions{Un: un})
		if err != nil {
			t.Fatal(err)
		}
		// Lemma 3: |S| ≤ 2un − 1 and M ∈ S.
		if len(out) > CandidateSetBound(un) {
			t.Fatalf("trial %d: |S| = %d > %d", trial, len(out), CandidateSetBound(un))
		}
		found := false
		for _, it := range out {
			if it.ID == cal.Set.Max().ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: maximum dropped (n=%d un=%d)", trial, n, un)
		}
		// Lemma 3: ≤ 4·n·un comparisons.
		if float64(l.Naive()) > Phase1UpperBound(n, un) {
			t.Fatalf("trial %d: %d comparisons > bound %g", trial, l.Naive(), Phase1UpperBound(n, un))
		}
	}
}

func TestFilterKeepsMaxAgainstAdversary(t *testing.T) {
	// Even with adversarial tie-breaking (the max loses every game the
	// model lets it lose), Lemma 1 guarantees the max survives when un is
	// not underestimated.
	root := rng.New(4)
	for trial := 0; trial < 20; trial++ {
		r := root.ChildN("trial", trial)
		n := 100 + r.Intn(400)
		un := 2 + r.Intn(8)
		cal, err := dataset.UniformCalibrated(n, un, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		o := naiveOracle(cal.DeltaN, worker.AdversarialTie{}, nil, r)
		out, err := Filter(context.Background(), cal.Set.Items(), o, FilterOptions{Un: un})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, it := range out {
			if it.ID == cal.Set.Max().ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: adversary evicted the maximum", trial)
		}
	}
}

func TestFilterOverestimateStillCorrect(t *testing.T) {
	// Section 4.4: overestimating un can only increase cost, never break
	// correctness.
	r := rng.New(5)
	cal, err := dataset.UniformCalibrated(500, 5, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, factor := range []int{2, 4, 10} {
		o := naiveOracle(cal.DeltaN, worker.RandomTie{R: r}, nil, r)
		out, err := Filter(context.Background(), cal.Set.Items(), o, FilterOptions{Un: 5 * factor})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, it := range out {
			if it.ID == cal.Set.Max().ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("overestimate ×%d lost the maximum", factor)
		}
		if len(out) > CandidateSetBound(5*factor) {
			t.Fatalf("overestimate ×%d: |S| = %d", factor, len(out))
		}
	}
}

func TestFilterLossTrackingSameGuarantees(t *testing.T) {
	root := rng.New(6)
	for trial := 0; trial < 15; trial++ {
		r := root.ChildN("trial", trial)
		cal, err := dataset.UniformCalibrated(400, 6, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		lPlain, lTracked := cost.NewLedger(), cost.NewLedger()
		oPlain := naiveOracle(cal.DeltaN, worker.RandomTie{R: r.Child("a")}, lPlain, r.Child("a"))
		oTracked := naiveOracle(cal.DeltaN, worker.RandomTie{R: r.Child("b")}, lTracked, r.Child("b"))

		outPlain, err := Filter(context.Background(), cal.Set.Items(), oPlain, FilterOptions{Un: 6})
		if err != nil {
			t.Fatal(err)
		}
		outTracked, err := Filter(context.Background(), cal.Set.Items(), oTracked, FilterOptions{Un: 6, TrackLosses: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, out := range [][]item.Item{outPlain, outTracked} {
			found := false
			for _, it := range out {
				if it.ID == cal.Set.Max().ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("trial %d: maximum dropped", trial)
			}
		}
		if len(outTracked) > CandidateSetBound(6) {
			t.Fatalf("trial %d: tracked |S| = %d", trial, len(outTracked))
		}
	}
}

func TestFilterWithMemoizedOracle(t *testing.T) {
	// Appendix A optimization 1: a shared memo across iterations must not
	// affect correctness and must reduce paid comparisons on repeated
	// pairings.
	r := rng.New(7)
	cal, err := dataset.UniformCalibrated(300, 5, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	l := cost.NewLedger()
	w := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: r}, R: r}
	o := tournament.NewOracle(w, worker.Naive, l, tournament.NewMemo())
	out, err := Filter(context.Background(), cal.Set.Items(), o, FilterOptions{Un: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range out {
		if it.ID == cal.Set.Max().ID {
			found = true
		}
	}
	if !found {
		t.Fatal("memoized filter lost the maximum")
	}
	if float64(l.Naive()) > Phase1UpperBound(300, 5) {
		t.Fatalf("comparisons %d exceed bound", l.Naive())
	}
}

func TestFilterProperty(t *testing.T) {
	// Property over random sizes/targets: |S| bound, max retention, and
	// comparison bound hold simultaneously.
	root := rng.New(8)
	trial := 0
	f := func(nRaw uint16, unRaw, seedRaw uint8) bool {
		trial++
		r := root.ChildN("q", trial)
		n := int(nRaw)%500 + 20
		un := int(unRaw)%8 + 1
		if 4*un > n {
			un = n / 4
			if un < 1 {
				return true
			}
		}
		cal, err := dataset.UniformCalibrated(n, un, 1, r)
		if err != nil {
			return true // calibration tie: skip
		}
		l := cost.NewLedger()
		o := naiveOracle(cal.DeltaN, worker.RandomTie{R: r}, l, r)
		out, err := Filter(context.Background(), cal.Set.Items(), o, FilterOptions{Un: un})
		if err != nil {
			return false
		}
		if n >= 2*un && len(out) > CandidateSetBound(un) {
			return false
		}
		if float64(l.Naive()) > Phase1UpperBound(n, un) {
			return false
		}
		for _, it := range out {
			if it.ID == cal.Set.Max().ID {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterDuplicateValues(t *testing.T) {
	// Multisets are allowed: duplicate maximum values must not break the
	// invariants (any copy of the max counts as success).
	r := rng.New(9)
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i / 2) // every value appears twice
	}
	s := item.NewSet(values)
	un := s.UCount(1.0) // elements within 1.0 of max value 49
	o := naiveOracle(1.0, worker.RandomTie{R: r}, nil, r)
	out, err := Filter(context.Background(), s.Items(), o, FilterOptions{Un: un})
	if err != nil {
		t.Fatal(err)
	}
	foundTop := false
	for _, it := range out {
		if it.Value == s.Max().Value {
			foundTop = true
		}
	}
	if !foundTop {
		t.Fatal("no maximum-valued element survived")
	}
}

func TestLemma1OnLowerBoundInstance(t *testing.T) {
	// Lemma 1, verified directly on the Lemma 7 instance with the worst
	// adversary: in an all-play-all tournament the maximum wins at least
	// n − un comparisons, because only under-threshold opponents can beat
	// it.
	const (
		n     = 60
		un    = 7
		delta = 1.0
	)
	s, err := dataset.Lemma7Instance(n, un, delta)
	if err != nil {
		t.Fatal(err)
	}
	o := naiveOracle(delta, worker.AdversarialTie{}, nil, rng.New(1))
	res, err := tournament.RoundRobin(context.Background(), s.Items(), o)
	if err != nil {
		t.Fatal(err)
	}
	maxWins := res.Wins[s.Max().ID]
	if maxWins < n-un {
		t.Fatalf("maximum won %d < n−un = %d comparisons", maxWins, n-un)
	}
	// And the filter therefore keeps it, even against the adversary.
	out, err := Filter(context.Background(), s.Items(), naiveOracle(delta, worker.AdversarialTie{}, nil, rng.New(2)), FilterOptions{Un: un})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range out {
		if it.ID == s.Max().ID {
			found = true
		}
	}
	if !found {
		t.Fatal("filter dropped the maximum on the lower-bound instance")
	}
}

func TestFilterExceedsLowerBoundComparisons(t *testing.T) {
	// Corollary 1: any algorithm guaranteeing a small candidate set must
	// perform at least n·un/4 naive comparisons. The filter's measured
	// count must sit between the lower and upper bounds.
	r := rng.New(3)
	cal, err := dataset.UniformCalibrated(1000, 10, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	l := cost.NewLedger()
	o := naiveOracle(cal.DeltaN, worker.RandomTie{R: r}, l, r)
	if _, err := Filter(context.Background(), cal.Set.Items(), o, FilterOptions{Un: 10}); err != nil {
		t.Fatal(err)
	}
	got := float64(l.Naive())
	if got < Phase1LowerBound(1000, 10) {
		t.Fatalf("comparisons %g below the n·un/4 lower bound %g — impossible for a correct filter",
			got, Phase1LowerBound(1000, 10))
	}
	if got > Phase1UpperBound(1000, 10) {
		t.Fatalf("comparisons %g above the 4·n·un upper bound", got)
	}
}

func TestFilterBoundarySizes(t *testing.T) {
	// Exact boundary inputs around the group size g = 4·un and the loop
	// threshold 2·un.
	root := rng.New(10)
	const un = 5
	for _, n := range []int{2 * un, 2*un + 1, 4 * un, 4*un + 1, 8 * un, 8*un - 1} {
		r := root.ChildN("n", n)
		cal, err := dataset.UniformCalibrated(n, un, 1, r)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		o := naiveOracle(cal.DeltaN, worker.RandomTie{R: r}, nil, r)
		out, err := Filter(context.Background(), cal.Set.Items(), o, FilterOptions{Un: un})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(out) > CandidateSetBound(un) {
			t.Fatalf("n=%d: |S| = %d", n, len(out))
		}
		found := false
		for _, it := range out {
			if it.ID == cal.Set.Max().ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("n=%d: maximum dropped at boundary size", n)
		}
	}
}
