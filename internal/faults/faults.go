// Package faults is a seeded, injectable filesystem abstraction: an
// interface over the handful of operations the repository's durable
// artifacts use (read, create+write+sync+rename, remove, readdir), a
// passthrough OS implementation, and an Injector that decorates any FS
// with a deterministic plan of disk faults — ENOSPC, EIO, torn writes
// that truncate mid-buffer, dropped syncs, failed or delayed renames —
// triggered per path and per op count. It is to the storage layer what
// internal/chaos is to the crowd: every durability claim becomes
// testable under injected faults, with a ParsePlan spec grammar
// mirroring chaos's so harnesses configure both the same way.
package faults

import (
	"io"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"crowdmax/internal/rng"
)

// File is the write side of an atomic-rename protocol: the subset of
// *os.File that checkpoint.WriteFileAtomic drives between CreateTemp
// and Rename.
type File interface {
	io.Writer
	Chmod(mode os.FileMode) error
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem surface durable artifacts are written and
// recovered through. *os.File satisfies File, and OS() returns the
// passthrough implementation; NewInjector decorates any FS with faults.
type FS interface {
	ReadFile(path string) ([]byte, error)
	ReadDir(dir string) ([]fs.DirEntry, error)
	Stat(path string) (fs.FileInfo, error)
	MkdirAll(dir string, mode os.FileMode) error
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
}

type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) ReadFile(path string) ([]byte, error)      { return os.ReadFile(path) }
func (osFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }
func (osFS) Stat(path string) (fs.FileInfo, error)     { return os.Stat(path) }
func (osFS) MkdirAll(dir string, mode os.FileMode) error {
	return os.MkdirAll(dir, mode)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }

// Injector decorates a base FS with a Plan of fault rules. Each rule
// keeps its own matched-op counter, so windows ("@N+", "@N-M") position
// faults deterministically on the sequence of operations the rule
// matches; probabilistic rules ("~0.1") draw from a per-rule child
// stream of the plan seed, so a given plan+seed always faults the same
// operations in the same order.
type Injector struct {
	base  FS
	rules []*ruleState
}

type ruleState struct {
	Rule
	op      Op
	spec    string
	count   atomic.Int64 // operations this rule matched (op + glob)
	fired   atomic.Int64 // operations this rule faulted
	probMu  sync.Mutex
	probRng *rng.Source
}

// NewInjector wraps base with the plan's fault rules. A zero plan
// injects nothing and the Injector is a transparent passthrough.
func NewInjector(base FS, plan Plan) *Injector {
	in := &Injector{base: base}
	for i, r := range plan.Rules {
		st := &ruleState{Rule: r, op: r.Mode.op(), spec: r.String()}
		if r.Prob > 0 {
			st.probRng = rng.New(plan.Seed).ChildN("faults-"+string(r.Mode), i)
		}
		in.rules = append(in.rules, st)
	}
	return in
}

// hit returns the first rule that fires for this operation on this
// path, or nil. Every matching rule's counter advances whether or not
// it fires, so windows describe the op sequence, not the fault sequence.
func (in *Injector) hit(op Op, path string) *ruleState {
	var hit *ruleState
	for _, r := range in.rules {
		if r.op != op || !r.matchPath(path) {
			continue
		}
		pos := r.count.Add(1) - 1
		if hit != nil || !r.Window.active(pos) {
			continue
		}
		if r.Prob > 0 {
			r.probMu.Lock()
			fire := r.probRng.Bernoulli(r.Prob)
			r.probMu.Unlock()
			if !fire {
				continue
			}
		}
		r.fired.Add(1)
		hit = r // keep advancing later rules' counters
	}
	return hit
}

func (in *Injector) ReadFile(path string) ([]byte, error) {
	if r := in.hit(OpRead, path); r != nil {
		return nil, pathErr("read", path)
	}
	return in.base.ReadFile(path)
}

func (in *Injector) ReadDir(dir string) ([]fs.DirEntry, error) {
	if r := in.hit(OpReadDir, dir); r != nil {
		return nil, pathErr("readdir", dir)
	}
	return in.base.ReadDir(dir)
}

func (in *Injector) Stat(path string) (fs.FileInfo, error) {
	return in.base.Stat(path)
}

func (in *Injector) MkdirAll(dir string, mode os.FileMode) error {
	if r := in.hit(OpMkdir, dir); r != nil {
		return pathErr("mkdir", dir)
	}
	return in.base.MkdirAll(dir, mode)
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if r := in.hit(OpCreate, dir); r != nil {
		return nil, pathErr("createtemp", dir)
	}
	f, err := in.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, in: in}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if r := in.hit(OpRename, newpath); r != nil {
		switch r.Mode {
		case ModeRenameDelay:
			time.Sleep(time.Duration(r.DelayMS) * time.Millisecond)
		default:
			return pathErr("rename", newpath)
		}
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *Injector) Remove(path string) error {
	if r := in.hit(OpRemove, path); r != nil {
		return pathErr("remove", path)
	}
	return in.base.Remove(path)
}

// faultFile intercepts the write/sync half of the atomic protocol. Write
// and Sync faults key on the temp file's own name, so "%*.job.tmp-*"
// globs target records mid-write.
type faultFile struct {
	File
	in *Injector
}

func (f *faultFile) Write(p []byte) (int, error) {
	r := f.in.hit(OpWrite, f.Name())
	if r == nil {
		return f.File.Write(p)
	}
	switch r.Mode {
	case ModeTorn:
		// Persist a prefix but report complete success: the tear only
		// surfaces when a later open finds the checksum short.
		n := int(float64(len(p)) * r.Frac)
		if n > 0 {
			if _, err := f.File.Write(p[:n]); err != nil {
				return 0, err
			}
		}
		return len(p), nil
	case ModeENOSPC:
		n := int(float64(len(p)) * r.Frac)
		if n > 0 {
			f.File.Write(p[:n])
		}
		return n, &fs.PathError{Op: "write", Path: f.Name(), Err: errNoSpace}
	default: // ModeEIOWrite
		return 0, pathErr("write", f.Name())
	}
}

func (f *faultFile) Sync() error {
	if r := f.in.hit(OpSync, f.Name()); r != nil {
		if r.Mode == ModeSyncDrop {
			return nil // silently dropped: data may not be durable
		}
		return pathErr("sync", f.Name())
	}
	return f.File.Sync()
}

// RuleStat is one rule's match/fire tally.
type RuleStat struct {
	Spec    string // the rule in ParsePlan grammar
	Matched int64  // operations the rule's op+glob matched
	Fired   int64  // operations it actually faulted
}

// Stats reports per-rule tallies in plan order.
func (in *Injector) Stats() []RuleStat {
	out := make([]RuleStat, len(in.rules))
	for i, r := range in.rules {
		out[i] = RuleStat{Spec: r.spec, Matched: r.count.Load(), Fired: r.fired.Load()}
	}
	return out
}
