package faults

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func writeVia(t *testing.T, fsys FS, path string, data []byte) error {
	t.Helper()
	tmp, err := fsys.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = fsys.Rename(name, path)
	}
	if werr != nil {
		fsys.Remove(name)
	}
	return werr
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	p := filepath.Join(dir, "a.bin")
	if err := writeVia(t, fsys, p, []byte("hello")); err != nil {
		t.Fatalf("writeVia: %v", err)
	}
	got, err := fsys.ReadFile(p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
}

func TestParsePlanGrammar(t *testing.T) {
	good := map[string]Rule{
		"enospc":               {Mode: ModeENOSPC},
		"enospc:0.25":          {Mode: ModeENOSPC, Frac: 0.25},
		"torn":                 {Mode: ModeTorn, Frac: 0.5},
		"torn:0.1":             {Mode: ModeTorn, Frac: 0.1},
		"eio-read":             {Mode: ModeEIORead},
		"eio-write":            {Mode: ModeEIOWrite},
		"eio-create":           {Mode: ModeEIOCreate},
		"eio-readdir":          {Mode: ModeEIOReadDir},
		"eio-mkdir":            {Mode: ModeEIOMkdir},
		"syncdrop":             {Mode: ModeSyncDrop},
		"syncfail":             {Mode: ModeSyncFail},
		"renamefail":           {Mode: ModeRenameFail},
		"renamedelay:20":       {Mode: ModeRenameDelay, DelayMS: 20},
		"removefail":           {Mode: ModeRemoveFail},
		"torn%*.job.tmp-*":     {Mode: ModeTorn, Frac: 0.5, Glob: "*.job.tmp-*"},
		"eio-read@3+":          {Mode: ModeEIORead, Window: Window{From: 3}},
		"eio-read@0+":          {Mode: ModeEIORead},
		"enospc@2-5":           {Mode: ModeENOSPC, Window: Window{From: 2, To: 5}},
		"torn~0.5":             {Mode: ModeTorn, Frac: 0.5, Prob: 0.5},
		"torn:0.3~0.5%*.j@1-2": {Mode: ModeTorn, Frac: 0.3, Prob: 0.5, Glob: "*.j", Window: Window{From: 1, To: 2}},
	}
	for spec, want := range good {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", spec, err)
			continue
		}
		if len(p.Rules) != 1 || p.Rules[0] != want {
			t.Errorf("ParsePlan(%q) = %+v, want %+v", spec, p.Rules, want)
		}
	}

	if p, err := ParsePlan("torn%*.tmp-*, eio-read@2+ ,renamefail"); err != nil || len(p.Rules) != 3 {
		t.Fatalf("multi-token plan: %+v, %v", p, err)
	}

	bad := []string{
		"", ",", "nope", "enospc:1.5", "enospc:-1", "torn:1",
		"renamedelay", "renamedelay:0", "eio-read:3", "syncdrop:x",
		"torn~0", "torn~1.5", "torn%", "torn%[", "eio-read@x", "eio-read@5-2",
	}
	for _, spec := range bad {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted, want error", spec)
		}
	}
}

func TestRuleStringRoundTrips(t *testing.T) {
	specs := []string{
		"enospc:0.25", "torn:0.3~0.5%*.j@1-2", "renamedelay:20",
		"eio-read@3+", "syncdrop%*.ck.tmp-*",
	}
	for _, spec := range specs {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		again, err := ParsePlan(p.Rules[0].String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", p.Rules[0].String(), spec, err)
		}
		if again.Rules[0] != p.Rules[0] {
			t.Errorf("round trip %q -> %q -> %+v", spec, p.Rules[0].String(), again.Rules[0])
		}
	}
}

func mustPlan(t *testing.T, spec string) Plan {
	t.Helper()
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	return p
}

func TestENOSPCWriteFails(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), mustPlan(t, "enospc"))
	err := writeVia(t, in, filepath.Join(dir, "a.bin"), []byte("data"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a.bin")); !os.IsNotExist(err) {
		t.Fatalf("file published despite ENOSPC: %v", err)
	}
}

func TestEIOReadAndReadDir(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.bin")
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(OS(), mustPlan(t, "eio-read,eio-readdir"))
	if _, err := in.ReadFile(p); !errors.Is(err, syscall.EIO) {
		t.Fatalf("ReadFile: want EIO, got %v", err)
	}
	if _, err := in.ReadDir(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("ReadDir: want EIO, got %v", err)
	}
}

func TestTornWriteTruncatesButReportsSuccess(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), mustPlan(t, "torn:0.5"))
	p := filepath.Join(dir, "a.bin")
	if err := writeVia(t, in, p, []byte("0123456789")); err != nil {
		t.Fatalf("torn write should report success, got %v", err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("torn write persisted %q, want first half", got)
	}
}

func TestWindowTriggersPerOpCount(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), mustPlan(t, "eio-read@1-2"))
	p := filepath.Join(dir, "a.bin")
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := in.ReadFile(p); err != nil {
		t.Fatalf("read 0 should pass: %v", err)
	}
	if _, err := in.ReadFile(p); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read 1 should fault, got %v", err)
	}
	if _, err := in.ReadFile(p); err != nil {
		t.Fatalf("read 2 should pass: %v", err)
	}
	st := in.Stats()
	if len(st) != 1 || st[0].Matched != 3 || st[0].Fired != 1 {
		t.Fatalf("stats = %+v, want matched 3 fired 1", st)
	}
}

func TestGlobScopesRule(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), mustPlan(t, "eio-read%*.job"))
	job := filepath.Join(dir, "j1.job")
	other := filepath.Join(dir, "j1.ck")
	for _, p := range []string{job, other} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := in.ReadFile(other); err != nil {
		t.Fatalf("non-matching path faulted: %v", err)
	}
	if _, err := in.ReadFile(job); !errors.Is(err, syscall.EIO) {
		t.Fatalf("matching path passed, want EIO: %v", err)
	}
	// The counter only advances on matching paths.
	if st := in.Stats(); st[0].Matched != 1 {
		t.Fatalf("glob rule matched %d ops, want 1", st[0].Matched)
	}
}

func TestSyncDropSilentAndSyncFail(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), mustPlan(t, "syncdrop@0-1,syncfail@1+"))
	if err := writeVia(t, in, filepath.Join(dir, "a.bin"), []byte("x")); err != nil {
		t.Fatalf("syncdrop should be silent: %v", err)
	}
	err := writeVia(t, in, filepath.Join(dir, "b.bin"), []byte("x"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("syncfail: want EIO, got %v", err)
	}
}

func TestRenameAndRemoveFaults(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), mustPlan(t, "renamefail,removefail"))
	err := writeVia(t, in, filepath.Join(dir, "a.bin"), []byte("x"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename: want EIO, got %v", err)
	}
	// writeVia's cleanup Remove also faulted, so the temp file survives.
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 || !strings.Contains(ents[0].Name(), ".tmp-") {
		t.Fatalf("expected orphaned temp file, got %v, %v", ents, err)
	}
}

func TestProbabilisticRuleIsSeededAndDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		dir := t.TempDir()
		plan := mustPlan(t, "eio-read~0.4")
		plan.Seed = seed
		in := NewInjector(OS(), plan)
		p := filepath.Join(dir, "a.bin")
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 40)
		for i := range out {
			_, err := in.ReadFile(p)
			out[i] = err != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.4 fired %d/%d times", fired, len(a))
	}
}

func TestFirstFiringRuleWinsButAllCountersAdvance(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), mustPlan(t, "eio-read@0-1,eio-read"))
	p := filepath.Join(dir, "a.bin")
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	in.ReadFile(p)
	st := in.Stats()
	if st[0].Fired != 1 || st[1].Fired != 0 {
		t.Fatalf("first rule should win: %+v", st)
	}
	if st[0].Matched != 1 || st[1].Matched != 1 {
		t.Fatalf("both counters should advance: %+v", st)
	}
}

func TestZeroPlanIsPassthrough(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), Plan{})
	p := filepath.Join(dir, "a.bin")
	if err := writeVia(t, in, p, []byte("ok")); err != nil {
		t.Fatalf("zero plan faulted: %v", err)
	}
	if got, _ := in.ReadFile(p); string(got) != "ok" {
		t.Fatalf("round trip got %q", got)
	}
}
