package faults

import (
	"fmt"
	"io/fs"
	"path"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// Op names a filesystem operation a rule can target.
type Op uint8

// The operations the Injector intercepts.
const (
	OpRead Op = iota
	OpReadDir
	OpCreate
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpMkdir
)

// Mode names a fault behaviour.
type Mode string

// The fault modes a Plan can inject.
const (
	ModeENOSPC      Mode = "enospc"      // write persists a prefix, returns ENOSPC
	ModeEIORead     Mode = "eio-read"    // ReadFile fails with EIO
	ModeEIOWrite    Mode = "eio-write"   // write fails with EIO
	ModeEIOCreate   Mode = "eio-create"  // CreateTemp fails with EIO
	ModeEIOReadDir  Mode = "eio-readdir" // ReadDir fails with EIO
	ModeEIOMkdir    Mode = "eio-mkdir"   // MkdirAll fails with EIO
	ModeTorn        Mode = "torn"        // write truncates mid-buffer, reports success
	ModeSyncDrop    Mode = "syncdrop"    // Sync silently does nothing
	ModeSyncFail    Mode = "syncfail"    // Sync fails with EIO
	ModeRenameFail  Mode = "renamefail"  // Rename fails with EIO
	ModeRenameDelay Mode = "renamedelay" // Rename sleeps DelayMS first
	ModeRemoveFail  Mode = "removefail"  // Remove fails with EIO
)

// op maps a mode to the operation it intercepts.
func (m Mode) op() Op {
	switch m {
	case ModeEIORead:
		return OpRead
	case ModeEIOReadDir:
		return OpReadDir
	case ModeEIOCreate:
		return OpCreate
	case ModeEIOMkdir:
		return OpMkdir
	case ModeSyncDrop, ModeSyncFail:
		return OpSync
	case ModeRenameFail, ModeRenameDelay:
		return OpRename
	case ModeRemoveFail:
		return OpRemove
	default: // enospc, eio-write, torn
		return OpWrite
	}
}

// Window restricts a rule to a span of its matched-op counter: positions
// [From, To), with To == 0 meaning unbounded. The zero Window is always
// active.
type Window struct{ From, To int64 }

func (w Window) active(pos int64) bool {
	return pos >= w.From && (w.To == 0 || pos < w.To)
}

// Rule is one fault: a mode, its parameters, and the path/op-count
// triggers scoping it.
type Rule struct {
	// Mode selects the fault behaviour.
	Mode Mode
	// Frac parameterizes torn (fraction of the buffer persisted,
	// default 0.5) and enospc (fraction persisted before the error,
	// default 0).
	Frac float64
	// DelayMS is renamedelay's sleep in milliseconds.
	DelayMS int64
	// Prob, when > 0, fires the rule on only that fraction of in-window
	// matches, drawn from a seeded per-rule stream. 0 fires on all.
	Prob float64
	// Glob, when non-empty, scopes the rule to operations whose target
	// base name matches it ("*.job", "*.ck.tmp-*"). Empty matches all.
	Glob string
	// Window scopes the rule to a span of its matched-op counter.
	Window Window
}

func (r Rule) matchPath(p string) bool {
	if r.Glob == "" {
		return true
	}
	ok, err := path.Match(r.Glob, filepath.Base(p))
	return err == nil && ok
}

// String renders the rule back in ParsePlan grammar.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(string(r.Mode))
	switch r.Mode {
	case ModeTorn, ModeENOSPC:
		if r.Frac > 0 {
			fmt.Fprintf(&b, ":%g", r.Frac)
		}
	case ModeRenameDelay:
		fmt.Fprintf(&b, ":%d", r.DelayMS)
	}
	if r.Prob > 0 {
		fmt.Fprintf(&b, "~%g", r.Prob)
	}
	if r.Glob != "" {
		b.WriteString("%" + r.Glob)
	}
	if r.Window != (Window{}) {
		if r.Window.To == 0 {
			fmt.Fprintf(&b, "@%d+", r.Window.From)
		} else {
			fmt.Fprintf(&b, "@%d-%d", r.Window.From, r.Window.To)
		}
	}
	return b.String()
}

// Plan is a declarative fault configuration: rules applied in order
// (first firing rule wins per operation) plus the seed for probabilistic
// rules. The zero Plan injects nothing.
type Plan struct {
	Rules []Rule
	Seed  uint64
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool { return len(p.Rules) > 0 }

// ParsePlan parses a comma-separated fault spec — the -faults flag
// syntax, mirroring internal/chaos's ParsePlan:
//
//	enospc[:frac]    write fails ENOSPC (after persisting frac, default 0)
//	eio-read         ReadFile fails EIO
//	eio-write        write fails EIO
//	eio-create       temp-file creation fails EIO
//	eio-readdir      directory listing fails EIO
//	eio-mkdir        directory creation fails EIO
//	torn[:frac]      write persists only frac of the buffer (default 0.5)
//	                 but reports success — the classic torn write
//	syncdrop         fsync silently dropped
//	syncfail         fsync fails EIO
//	renamefail       rename fails EIO
//	renamedelay:ms   rename delayed by ms milliseconds
//	removefail       remove fails EIO
//
// Any token may carry a "~p" suffix (fire on fraction p of matches,
// seeded), a "%glob" suffix scoping it to base names matching glob
// ("torn%*.job.tmp-*"), and a "@window" suffix restricting it to a span
// of the ops it matches: "@3+" from the 4th matching op on, "@0-2" the
// first two. Multiple tokens stack; the first rule that fires for an
// operation decides its fate.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		body, winSpec, hasWin := strings.Cut(tok, "@")
		body, glob, hasGlob := strings.Cut(body, "%")
		body, probSpec, hasProb := strings.Cut(body, "~")
		name, args, hasArgs := strings.Cut(body, ":")

		var r Rule
		switch Mode(name) {
		case ModeENOSPC, ModeTorn:
			r.Mode = Mode(name)
			if r.Mode == ModeTorn {
				r.Frac = 0.5
			}
			if hasArgs {
				f, err := strconv.ParseFloat(args, 64)
				if err != nil || f < 0 || f >= 1 {
					return Plan{}, fmt.Errorf("faults: %s fraction must be in [0, 1), got %q", name, tok)
				}
				r.Frac = f
			}
		case ModeRenameDelay:
			r.Mode = ModeRenameDelay
			ms, err := strconv.ParseInt(args, 10, 64)
			if err != nil || ms < 1 {
				return Plan{}, fmt.Errorf("faults: renamedelay wants a positive millisecond count, got %q", tok)
			}
			r.DelayMS = ms
		case ModeEIORead, ModeEIOWrite, ModeEIOCreate, ModeEIOReadDir, ModeEIOMkdir,
			ModeSyncDrop, ModeSyncFail, ModeRenameFail, ModeRemoveFail:
			r.Mode = Mode(name)
			if hasArgs {
				return Plan{}, fmt.Errorf("faults: %s takes no argument, got %q", name, tok)
			}
		default:
			return Plan{}, fmt.Errorf("faults: unknown fault %q (want enospc, eio-read, eio-write, eio-create, eio-readdir, eio-mkdir, torn, syncdrop, syncfail, renamefail, renamedelay:ms, removefail)", name)
		}
		if hasProb {
			f, err := strconv.ParseFloat(probSpec, 64)
			if err != nil || f <= 0 || f > 1 {
				return Plan{}, fmt.Errorf("faults: probability must be in (0, 1], got %q", tok)
			}
			r.Prob = f
		}
		if hasGlob {
			if glob == "" {
				return Plan{}, fmt.Errorf("faults: empty glob in %q", tok)
			}
			if _, err := path.Match(glob, "probe"); err != nil {
				return Plan{}, fmt.Errorf("faults: bad glob in %q: %v", tok, err)
			}
			r.Glob = glob
		}
		if hasWin {
			w, err := parseWindow(winSpec)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: bad window in %q: %v", tok, err)
			}
			r.Window = w
		}
		p.Rules = append(p.Rules, r)
	}
	if !p.Enabled() {
		return Plan{}, fmt.Errorf("faults: empty plan %q", spec)
	}
	return p, nil
}

// parseWindow parses "N+" (open-ended from N) or "N-M" (the half-open
// span [N, M)) — the same grammar as internal/chaos.
func parseWindow(s string) (Window, error) {
	if from, ok := strings.CutSuffix(s, "+"); ok {
		n, err := strconv.ParseInt(from, 10, 64)
		if err != nil || n < 0 {
			return Window{}, fmt.Errorf("want N+ with N ≥ 0, got %q", s)
		}
		if n == 0 {
			return Window{}, nil
		}
		return Window{From: n}, nil
	}
	fromS, toS, ok := strings.Cut(s, "-")
	if !ok {
		return Window{}, fmt.Errorf("want N+ or N-M, got %q", s)
	}
	from, err1 := strconv.ParseInt(fromS, 10, 64)
	to, err2 := strconv.ParseInt(toS, 10, 64)
	if err1 != nil || err2 != nil || from < 0 || to <= from {
		return Window{}, fmt.Errorf("want N-M with 0 ≤ N < M, got %q", s)
	}
	return Window{From: from, To: to}, nil
}

var (
	errNoSpace = error(syscall.ENOSPC)
	errIO      = error(syscall.EIO)
)

func pathErr(op, p string) error {
	return &fs.PathError{Op: op, Path: p, Err: errIO}
}
