package trust

import (
	"fmt"
	"reflect"
	"testing"

	"crowdmax/internal/rng"
)

// feed records nSamples observations between random worker pairs, with
// agreement probabilities given by kind: honest↔honest workers agree with
// probability pHonest, clique↔clique members always agree, any mixed pair
// (or any pair involving a spammer) agrees at its chance/adversarial rate.
func feed(g *Graph, r *rng.Source, nSamples int, honest, spammers, clique int) {
	n := honest + spammers + clique
	kind := func(i int) string {
		switch {
		case i < honest:
			return "honest"
		case i < honest+spammers:
			return "spammer"
		default:
			return "clique"
		}
	}
	name := func(i int) string { return fmt.Sprintf("%s-%d", kind(i), i) }
	for s := 0; s < nSamples; s++ {
		i := r.Intn(n)
		j := r.Intn(n - 1)
		if j >= i {
			j++
		}
		var p float64
		switch kind(i) + "/" + kind(j) {
		case "honest/honest":
			p = 0.9
		case "clique/clique":
			p = 1.0
		case "honest/clique", "clique/honest":
			p = 0.1 // the clique inverts what honest workers resolve
		default:
			p = 0.5 // spammers agree with everyone at chance
		}
		g.Observe(name(i), name(j), r.Bernoulli(p))
	}
}

func TestExtractFindsHonestCoreAgainstCliqueAndSpammers(t *testing.T) {
	g := New(Config{Seed: 7})
	feed(g, rng.New(11), 600, 6, 2, 2)
	ext := g.Extract()
	if len(ext.Core) < 4 {
		t.Fatalf("core too small: %v", ext.Core)
	}
	for _, name := range ext.Core {
		if name[:6] != "honest" {
			t.Fatalf("non-honest worker %s extracted into the core (%v)", name, ext.Core)
		}
	}
	if ext.Confidence < 0.5 {
		t.Fatalf("confidence %.3f too low for a well-separated 600-sample graph", ext.Confidence)
	}
	// Honest workers score high against the core; clique members and
	// spammers score below any sane floor.
	for name, score := range ext.Scores {
		switch {
		case name[:6] == "honest" && score < 0.7:
			t.Errorf("honest worker %s scored %.3f, want ≥ 0.7", name, score)
		case name[:6] != "honest" && score >= 0.7:
			t.Errorf("%s scored %.3f, want < 0.7", name, score)
		}
	}
}

func TestExtractPrefersLargerHonestCoreOverPerfectClique(t *testing.T) {
	// A 3-clique with perfect internal agreement vs 7 honest workers at
	// 0.9: the honest core's density wins while honesty holds the majority.
	g := New(Config{Seed: 3})
	feed(g, rng.New(5), 1000, 7, 0, 3)
	ext := g.Extract()
	if len(ext.Core) < 5 {
		t.Fatalf("core %v too small", ext.Core)
	}
	for _, name := range ext.Core {
		if name[:6] != "honest" {
			t.Fatalf("clique member %s in core %v", name, ext.Core)
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	build := func() Extraction {
		g := New(Config{Seed: 42})
		feed(g, rng.New(9), 400, 5, 2, 3)
		return g.Extract()
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("extraction not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestExtractEmptyAndThinGraphs(t *testing.T) {
	g := New(Config{})
	if ext := g.Extract(); ext.Confidence != 0 || len(ext.Core) != 0 {
		t.Fatalf("empty graph extracted %+v", ext)
	}
	// One agreement between two workers: a core may exist but a 2-worker
	// core is below MinCore, so confidence must stay 0.
	g.Observe("a", "b", true)
	ext := g.Extract()
	if ext.Confidence != 0 {
		t.Fatalf("2-vertex graph reported confidence %.3f, want 0", ext.Confidence)
	}
	// All-disagreement graph: every edge clips to zero weight — no core.
	g2 := New(Config{})
	for i := 0; i < 10; i++ {
		g2.Observe("a", "b", false)
		g2.Observe("b", "c", false)
		g2.Observe("a", "c", false)
	}
	if ext := g2.Extract(); len(ext.Core) != 0 || ext.Confidence != 0 {
		t.Fatalf("all-disagreement graph extracted %+v", ext)
	}
}

func TestForgetErasesEdgesAndScores(t *testing.T) {
	g := New(Config{Seed: 1})
	feed(g, rng.New(2), 500, 6, 0, 2)
	before := g.Extract()
	if _, ok := before.Scores["clique-6"]; !ok {
		t.Fatal("clique-6 never accumulated a score; test needs more samples")
	}
	n := g.Samples()
	g.Forget("clique-6")
	if g.Samples() >= n {
		t.Fatalf("Forget did not drop samples: %d → %d", n, g.Samples())
	}
	after := g.Extract()
	if _, ok := after.Scores["clique-6"]; ok {
		t.Fatalf("forgotten worker still scored: %+v", after.Scores)
	}
	// Unknown names are a no-op.
	g.Forget("nobody")
}

func TestObserveIgnoresSelfAndDefaults(t *testing.T) {
	g := New(Config{})
	g.Observe("a", "a", true)
	if g.Samples() != 0 {
		t.Fatalf("self-observation recorded: %d samples", g.Samples())
	}
	cfg := g.Config()
	if cfg.MinSamples != 4 || cfg.MinCore != 3 || cfg.Penalty != 1 || cfg.ExtractEvery != 16 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestInCore(t *testing.T) {
	x := Extraction{Core: []string{"a", "c", "d"}}
	for _, tc := range []struct {
		name string
		want bool
	}{{"a", true}, {"b", false}, {"c", true}, {"d", true}, {"e", false}} {
		if got := x.InCore(tc.name); got != tc.want {
			t.Errorf("InCore(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
