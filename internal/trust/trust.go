// Package trust extracts a reliable-worker core from a worker agreement
// graph with no ground truth — the gold-free counterpart of the gold-probe
// health tracking in internal/dispatch.
//
// The paper's Algorithm-4-style quality control assumes an adversary that
// fails gold questions. A coordinated clique that answers gold honestly but
// lies everywhere else sails straight through: gold accuracy stays perfect
// while every real answer is poisoned. Kawase, Kuroki and Miyauchi ("Graph
// Mining Meets Crowdsourcing") observe that the reliable core can instead be
// recovered from answers the run already paid for: build a graph whose
// vertices are workers and whose edge weights measure how often two workers
// agreed when independently answering the same task, then extract a densest
// subgraph. Honest workers agree with each other on every pair the threshold
// model lets them resolve, so they form a large dense core; spammers agree
// with everyone at chance level and contribute no weight; a colluding clique
// agrees internally but disagrees with the honest majority, so as long as
// honest workers outnumber the clique the honest core is strictly denser
// and the clique is peeled away.
//
// Graph accumulates agreement observations online (the dispatch pool feeds
// it from its disagreement-sampling duplicates) and Extract runs Charikar's
// greedy peeling — repeatedly remove the vertex of minimum weighted degree,
// keep the densest prefix seen — a deterministic 1/2-approximation of the
// densest subgraph. Everyone outside the core is scored by pooled agreement
// weight into the core; the extraction also carries a confidence signal
// (core/outside separation scaled by sample sufficiency) that gates verdicts
// while the graph is still thin and feeds the degrade controller.
//
// Determinism: observations are order-independent (per-pair counters), and
// peeling breaks ties by a seeded hash of the worker name, so the same
// observation multiset and seed extract the same core on every replay.
package trust

import (
	"hash/fnv"
	"math"
	"sort"
	"sync"
)

// Config parameterizes extraction. The zero value gets usable defaults.
type Config struct {
	// MinSamples is the pooled sample count a worker needs against the core
	// before it receives a score (and therefore a verdict). Defaults to 4,
	// mirroring HealthConfig.MinProbes: one unlucky duplicate cannot
	// condemn an honest worker.
	MinSamples int
	// MinCore is the smallest core Extract will stand behind: a thinner
	// extraction reports Confidence 0 and condemns nobody. Defaults to 3
	// (two workers always agree with themselves trivially; three is the
	// smallest majority worth the name).
	MinCore int
	// Penalty is the weight a disagreement subtracts from an edge (an
	// agreement adds 1); edge weights clip at 0. Defaults to 1, which
	// zeroes chance-level agreers (spammers) and leaves honest edges with
	// weight ≈ (2·rate − 1)·samples.
	Penalty float64
	// ExtractEvery is the number of observations between extractions when
	// the graph is driven by a dispatch pool. Defaults to 16. The Graph
	// itself never extracts spontaneously; this is advice to the caller.
	ExtractEvery int
	// Seed orders peeling tie-breaks. Two graphs with the same seed and
	// observation multiset extract identically.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.MinCore <= 0 {
		c.MinCore = 3
	}
	if c.Penalty <= 0 {
		c.Penalty = 1
	}
	if c.ExtractEvery <= 0 {
		c.ExtractEvery = 16
	}
	return c
}

// edge is one unordered worker pair's agreement tally.
type edge struct {
	agree, total int64
}

// Graph is an online worker agreement graph. Safe for concurrent use.
type Graph struct {
	mu      sync.Mutex
	cfg     Config
	idx     map[string]int
	names   []string
	edges   map[[2]int]*edge
	samples int64
}

// New returns an empty graph under cfg (defaults applied).
func New(cfg Config) *Graph {
	return &Graph{
		cfg:   cfg.withDefaults(),
		idx:   map[string]int{},
		edges: map[[2]int]*edge{},
	}
}

// Config returns the graph's effective (defaulted) configuration.
func (g *Graph) Config() Config {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cfg
}

// Observe records that workers a and b independently answered the same task
// and either agreed or did not. Self-observations are ignored. Observation
// order does not matter.
func (g *Graph) Observe(a, b string, agreed bool) {
	if a == b {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	e := g.edgeLocked(g.nodeLocked(a), g.nodeLocked(b))
	e.total++
	if agreed {
		e.agree++
	}
	g.samples++
}

// Forget erases every edge touching name — the fresh start a reinstated
// worker gets, so a stale grudge cannot instantly re-condemn it. The vertex
// itself remains (with no edges it carries no weight and no score).
func (g *Graph) Forget(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	i, ok := g.idx[name]
	if !ok {
		return
	}
	for key, e := range g.edges {
		if key[0] == i || key[1] == i {
			g.samples -= e.total
			delete(g.edges, key)
		}
	}
}

// Samples returns the total number of observations recorded (and not
// forgotten).
func (g *Graph) Samples() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.samples
}

func (g *Graph) nodeLocked(name string) int {
	if i, ok := g.idx[name]; ok {
		return i
	}
	i := len(g.names)
	g.idx[name] = i
	g.names = append(g.names, name)
	return i
}

func (g *Graph) edgeLocked(i, j int) *edge {
	if i > j {
		i, j = j, i
	}
	key := [2]int{i, j}
	e := g.edges[key]
	if e == nil {
		e = &edge{}
		g.edges[key] = e
	}
	return e
}

// Extraction is one dense-core extraction: the expert-labelled core, pooled
// agreement scores, and how much the extraction should be trusted.
type Extraction struct {
	// Core lists the extracted core workers, sorted by name. Empty when the
	// graph carries no positive-weight edge.
	Core []string
	// Scores maps each worker with at least MinSamples pooled observations
	// against core members to its pooled agreement rate with the core, in
	// [0, 1]. Core members score against the rest of the core. Workers with
	// too few samples are absent — no verdict, not a bad one.
	Scores map[string]float64
	// Density is the core's weighted edge density (total clipped edge
	// weight over core size), the quantity greedy peeling maximizes.
	Density float64
	// Confidence is how much the extraction should be trusted, in [0, 1]:
	// the core/outside agreement separation scaled by sample sufficiency.
	// 0 while the graph is too thin (or the core too small) to stand
	// behind; verdicts must not be applied at 0.
	Confidence float64
	// Samples is the observation count the extraction was computed from.
	Samples int64
}

// InCore reports whether name is in the extracted core.
func (x Extraction) InCore(name string) bool {
	i := sort.SearchStrings(x.Core, name)
	return i < len(x.Core) && x.Core[i] == name
}

// Extract runs greedy peeling on the current graph and returns the densest
// core with scores and confidence. Deterministic in (observations, seed).
func (g *Graph) Extract() Extraction {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := len(g.names)
	ext := Extraction{Samples: g.samples}
	if n == 0 {
		return ext
	}

	// Clipped edge weights: agreement minus penalized disagreement, ≥ 0.
	// A spammer's chance-level edges zero out; honest edges accumulate.
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for key, e := range g.edges {
		weight := float64(e.agree) - g.cfg.Penalty*float64(e.total-e.agree)
		if weight <= 0 {
			continue
		}
		w[key[0]][key[1]] = weight
		w[key[1]][key[0]] = weight
	}

	// Charikar peeling: repeatedly remove the vertex of minimum weighted
	// degree (ties broken by a seeded hash of the name, then the name) and
	// keep the densest surviving set. O(n²) per removal — pools are tens of
	// workers, not thousands.
	alive := make([]bool, n)
	deg := make([]float64, n)
	var totalW float64
	for i := 0; i < n; i++ {
		alive[i] = true
		for j := 0; j < n; j++ {
			deg[i] += w[i][j]
		}
		totalW += deg[i]
	}
	totalW /= 2
	aliveN := n
	bestDensity, bestSize := -1.0, 0
	removed := make([]int, 0, n)
	for aliveN > 0 {
		if d := totalW / float64(aliveN); d > bestDensity {
			bestDensity, bestSize = d, aliveN
		}
		min := -1
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			if min < 0 || deg[i] < deg[min] || (deg[i] == deg[min] && g.beforeLocked(i, min)) {
				min = i
			}
		}
		alive[min] = false
		aliveN--
		totalW -= deg[min]
		for j := 0; j < n; j++ {
			if alive[j] {
				deg[j] -= w[min][j]
			}
		}
		removed = append(removed, min)
	}
	if bestDensity <= 0 {
		// No positive-weight structure at all — nothing to stand behind.
		return ext
	}
	// The best prefix is everything not yet removed when it was recorded:
	// the last bestSize entries of the removal order.
	core := make([]bool, n)
	for _, i := range removed[n-bestSize:] {
		core[i] = true
	}
	for i := 0; i < n; i++ {
		if core[i] {
			ext.Core = append(ext.Core, g.names[i])
		}
	}
	sort.Strings(ext.Core)
	ext.Density = bestDensity

	// Pooled agreement against the core, per worker; intra-core and
	// core↔outside pools feed the confidence margin.
	agreeIn := make([]int64, n)
	totalIn := make([]int64, n)
	var coreAgree, coreTotal, outAgree, outTotal int64
	for key, e := range g.edges {
		i, j := key[0], key[1]
		switch {
		case core[i] && core[j]:
			agreeIn[i] += e.agree
			totalIn[i] += e.total
			agreeIn[j] += e.agree
			totalIn[j] += e.total
			coreAgree += e.agree
			coreTotal += e.total
		case core[i]:
			agreeIn[j] += e.agree
			totalIn[j] += e.total
			outAgree += e.agree
			outTotal += e.total
		case core[j]:
			agreeIn[i] += e.agree
			totalIn[i] += e.total
			outAgree += e.agree
			outTotal += e.total
		}
	}
	ext.Scores = map[string]float64{}
	for i := 0; i < n; i++ {
		if totalIn[i] >= int64(g.cfg.MinSamples) {
			ext.Scores[g.names[i]] = float64(agreeIn[i]) / float64(totalIn[i])
		}
	}

	if bestSize < g.cfg.MinCore || coreTotal == 0 {
		return ext // Scores stand, but confidence (and verdicts) do not.
	}
	coreRate := float64(coreAgree) / float64(coreTotal)
	// The baseline the core must separate from: observed outside agreement,
	// but never below chance — with nobody outside the core, beating a coin
	// is still the bar.
	baseline := 0.5
	if outTotal > 0 {
		if r := float64(outAgree) / float64(outTotal); r > baseline {
			baseline = r
		}
	}
	margin := 2 * (coreRate - baseline)
	sufficiency := float64(coreTotal) / float64(g.cfg.MinSamples*bestSize)
	ext.Confidence = clamp01(margin) * clamp01(sufficiency)
	return ext
}

// beforeLocked orders vertices i before j for peeling tie-breaks: by seeded
// name hash, then by name. Callers hold g.mu.
func (g *Graph) beforeLocked(i, j int) bool {
	hi, hj := g.tieHashLocked(i), g.tieHashLocked(j)
	if hi != hj {
		return hi < hj
	}
	return g.names[i] < g.names[j]
}

func (g *Graph) tieHashLocked(i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(g.names[i]))
	return splitmix(g.cfg.Seed ^ h.Sum64())
}

// splitmix is the SplitMix64 finalizer (mirrors internal/rng's mixer).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}
