package degrade

import (
	"context"
	"fmt"

	"crowdmax/internal/core"
	"crowdmax/internal/item"
	"crowdmax/internal/sched"
	"crowdmax/internal/tournament"
)

// Options configures a supervised Run.
type Options struct {
	// Un and TrackLosses configure the filter phase; see core.FilterOptions.
	Un          int
	TrackLosses bool
	// Randomized configures the randomized rung; see core.RandomizedOptions.
	Randomized core.RandomizedOptions
	// Scheduler selects the comparison schedule of the filter and every
	// expert rung; see core.FilterOptions.Scheduler.
	Scheduler sched.Kind
	// Signals, when set, samples the live decision inputs before each
	// ladder decision. nil decides on Unconstrained() samples.
	Signals func() Signals
	// OnPhase mirrors core.FindMaxOptions.OnPhase: called with "phase1"
	// after the filter and "done" before a successful return, carrying the
	// survivor set. The session layer hooks checkpoint snapshots here.
	OnPhase func(phase string, survivors []item.Item)
	// OnDecision, when set, is called synchronously after every ladder
	// decision. The session layer forwards these to obs.
	OnDecision func(Decision)
}

// Outcome reports a supervised run: the answer, the rung that produced it,
// and the full decision log.
type Outcome struct {
	// Best is the returned element; the zero Item when even best-so-far
	// had nothing (phase 1 never completed and no leader was established).
	Best item.Item
	// Candidates is the filter output (nil when phase 1 failed).
	Candidates []item.Item
	// Phase1Complete reports whether the filter ran to completion — δn-or
	// stronger labels are only honest when it did.
	Phase1Complete bool
	// Rung is the ladder rung that produced Best; Rung.Guarantee is the
	// label the answer may carry.
	Rung Rung
	// Decisions is the controller's decision log; LogHash its FNV hash.
	Decisions []Decision
	LogHash   uint64
}

// Run executes the two-phase algorithm under ctl's supervision: filter with
// the naïve oracle, then walk the quality ladder until a rung completes.
// Where core.FindMax turns a mid-phase failure into a hard stop, Run
// reports it to the controller and re-decides — dropping to a weaker rung,
// retrying the same one, or climbing back up when a blocked precondition
// has cleared — until a rung succeeds (nil error, Outcome.Rung states the
// achieved quality) or a fatal error halts the run (non-nil error alongside
// the best-so-far Outcome). Termination is structural: every failure burns
// one of a rung's bounded attempts and the terminal best-so-far rung cannot
// fail.
func Run(ctx context.Context, items []item.Item, naive, expert *tournament.Oracle, ctl *Controller, opt Options) (Outcome, error) {
	out := Outcome{}
	sample := opt.Signals
	if sample == nil {
		sample = Unconstrained
	}
	decide := func(point string) Rung {
		sig := sample()
		sig.Phase1Done = out.Phase1Complete
		sig.Candidates = len(out.Candidates)
		r := ctl.Decide(point, sig)
		if opt.OnDecision != nil {
			opt.OnDecision(ctl.LastDecision())
		}
		return r
	}
	finish := func(err error) (Outcome, error) {
		out.Decisions = ctl.Decisions()
		out.LogHash = ctl.LogHash()
		return out, err
	}

	candidates, err := core.Filter(ctx, items, naive, core.FilterOptions{Un: opt.Un, TrackLosses: opt.TrackLosses, Scheduler: opt.Scheduler})
	if err == nil && len(candidates) == 0 {
		err = fmt.Errorf("degrade: empty candidate set (un=%d underestimated?)", opt.Un)
	}
	if err != nil {
		if ctl.ReportPhase1(err) {
			decide("phase1-failed")
			return finish(fmt.Errorf("phase 1: %w", err))
		}
		// Phase 1 is not retried: its partial survivor state lives inside
		// the filter, so the only honest continuation is best-so-far —
		// which the ladder walk below reaches on its own, every stronger
		// rung being blocked without a candidate set.
	} else {
		out.Candidates = candidates
		out.Phase1Complete = true
		if opt.OnPhase != nil {
			opt.OnPhase("phase1", candidates)
		}
	}

	point := "start"
	for {
		rung := decide(point)
		if rung.Kind == RungBestSoFar {
			// The terminal rung spends nothing and returns the leader the
			// failed attempts left behind (possibly the zero Item).
			out.Rung = rung
			if opt.OnPhase != nil {
				opt.OnPhase("done", out.Candidates)
			}
			return finish(nil)
		}
		best, err := runRung(ctx, rung, out.Candidates, naive, expert, ctl, sample, opt)
		if err == nil {
			out.Best = best
			out.Rung = rung
			if opt.OnPhase != nil {
				opt.OnPhase("done", out.Candidates)
			}
			return finish(nil)
		}
		if best != (item.Item{}) {
			// Keep the failed rung's partial leader: it is the answer the
			// terminal best-so-far rung falls back to.
			out.Best = best
		}
		if ctl.Report(rung, err) {
			out.Rung = rung
			return finish(fmt.Errorf("rung %s: %w", rung.Name, err))
		}
		point = "error"
	}
}

// runRung executes one rung's policy over the candidate set.
func runRung(ctx context.Context, r Rung, candidates []item.Item, naive, expert *tournament.Oracle, ctl *Controller, sample func() Signals, opt Options) (item.Item, error) {
	switch r.Kind {
	case RungExpert2MaxFind:
		return core.TwoMaxFindWith(ctx, candidates, expert, opt.Scheduler)
	case RungExpertRandomized:
		ropt := opt.Randomized
		ropt.Scheduler = opt.Scheduler
		return core.RandomizedMaxFind(ctx, candidates, expert, ropt)
	case RungExpertShrunk:
		sub := ctl.Shrink(candidates, sample().ExpertRemaining)
		return core.TwoMaxFindWith(ctx, sub, expert, opt.Scheduler)
	case RungNaiveMajority:
		res, err := tournament.RoundRobin(ctx, candidates, naive)
		if err != nil {
			return item.Item{}, err
		}
		return res.TopByWins(), nil
	case RungBestSoFar:
		return item.Item{}, nil
	default:
		return item.Item{}, fmt.Errorf("degrade: unknown rung kind %d", int(r.Kind))
	}
}
