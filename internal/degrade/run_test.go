package degrade

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"crowdmax/internal/chaos"
	"crowdmax/internal/cost"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

func testItems(n int) []item.Item {
	items := make([]item.Item, n)
	for i := range items {
		items[i] = item.Item{ID: i + 1, Value: float64(i + 1)}
	}
	return items
}

// blurry is a deterministic threshold comparator that cannot tell items
// within distance 3 apart, so the filter keeps a multi-element candidate
// set and phase 2 has real work to do.
func blurry() worker.Comparator {
	return &worker.Threshold{Delta: 3, Tie: worker.HashTie{Seed: 11}}
}

// failAfter forwards to an inner backend until n requests have been served,
// then fails every request with err.
type failAfter struct {
	inner  dispatch.Backend
	n      int64
	served atomic.Int64
	err    error
}

func (f *failAfter) Answer(ctx context.Context, req dispatch.Request) (dispatch.Answer, error) {
	if f.served.Add(1) > f.n {
		return dispatch.Answer{}, f.err
	}
	return f.inner.Answer(ctx, req)
}

func runOracles(expertBackend dispatch.Backend) (naive, expert *tournament.Oracle, led *cost.Ledger) {
	led = cost.NewLedger()
	naive = tournament.NewOracle(worker.Truth, worker.Naive, led, tournament.NewMemo())
	expert = tournament.NewBackendOracle(expertBackend, worker.Expert, led, tournament.NewMemo())
	return naive, expert, led
}

func TestRunCleanPathStaysOnTopRung(t *testing.T) {
	naive, expert, _ := runOracles(dispatch.NewSimulated(worker.Truth))
	ctl := mustController(t, Config{})
	out, err := Run(context.Background(), testItems(40), naive, expert, ctl, Options{Un: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung.Name != "expert-2maxfind" || out.Rung.Guarantee != Guarantee2DeltaE {
		t.Fatalf("clean run landed on %q (%q), want expert-2maxfind (2δe)",
			out.Rung.Name, out.Rung.Guarantee)
	}
	if out.Best.ID != 40 {
		t.Fatalf("clean run returned item %d, want the maximum 40", out.Best.ID)
	}
	if !out.Phase1Complete || len(out.Candidates) == 0 {
		t.Fatalf("clean run: phase1Complete=%v candidates=%d", out.Phase1Complete, len(out.Candidates))
	}
	if len(out.Decisions) != 1 || out.Decisions[0].To != "expert-2maxfind" {
		t.Fatalf("clean run decisions %+v, want a single expert-2maxfind pick", out.Decisions)
	}
}

func TestRunExpertOutageDegradesToNaiveMajority(t *testing.T) {
	// The expert backend dies (recoverably) after its first answer:
	// mid-phase-2, exactly the acceptance scenario. The run must complete
	// with a δn answer, not an error. The naive workers are blurry (δ = 3)
	// so the filter keeps a real candidate set and phase 2 has work to lose.
	dead := &failAfter{inner: dispatch.NewSimulated(worker.Truth), n: 1, err: dispatch.ErrBackendUnavailable}
	led := cost.NewLedger()
	naive := tournament.NewOracle(blurry(), worker.Naive, led, tournament.NewMemo())
	expert := tournament.NewBackendOracle(dead, worker.Expert, led, tournament.NewMemo())
	ctl := mustController(t, Config{MaxAttempts: 1})
	var phases []string
	out, err := Run(context.Background(), testItems(40), naive, expert, ctl, Options{
		Un:      3,
		OnPhase: func(p string, _ []item.Item) { phases = append(phases, p) },
	})
	if err != nil {
		t.Fatalf("expert outage was not absorbed: %v", err)
	}
	if out.Rung.Name != "naive-majority" || out.Rung.Guarantee != GuaranteeDeltaN {
		t.Fatalf("outage run landed on %q (%q), want naive-majority (δn)",
			out.Rung.Name, out.Rung.Guarantee)
	}
	if !containsItem(out.Candidates, out.Best) {
		t.Fatalf("outage run returned %+v, not a member of the candidate set %v", out.Best, out.Candidates)
	}
	if len(phases) != 2 || phases[0] != "phase1" || phases[1] != "done" {
		t.Fatalf("OnPhase saw %v, want [phase1 done]", phases)
	}
	// The walk must record the downgrade: 2maxfind tried and failed, then
	// randomized and shrunk blocked by the dead expert class attempts...
	last := out.Decisions[len(out.Decisions)-1]
	if last.To != "naive-majority" || last.Direction() >= 0 {
		t.Fatalf("last decision %+v is not a downgrade to naive-majority", last)
	}
	if out.LogHash != ctl.LogHash() {
		t.Fatal("Outcome.LogHash does not match the controller's")
	}
}

func TestRunBudgetExhaustionDegrades(t *testing.T) {
	led := cost.NewLedger()
	naive := tournament.NewOracle(blurry(), worker.Naive, led, tournament.NewMemo())
	expert := tournament.NewBackendOracle(dispatch.NewSimulated(worker.Truth), worker.Expert, led, tournament.NewMemo())
	budget := dispatch.NewBudget(dispatch.Limits{MaxExpert: 4})
	expert.WithBudget(budget)
	ctl := mustController(t, Config{MaxAttempts: 1})
	out, err := Run(context.Background(), testItems(40), naive, expert, ctl, Options{
		Un: 3,
		Signals: func() Signals {
			s := Unconstrained()
			s.ExpertRemaining = budget.RemainingFor(worker.Expert)
			s.NaiveRemaining = budget.RemainingFor(worker.Naive)
			return s
		},
	})
	if err != nil {
		t.Fatalf("budget exhaustion was not absorbed: %v", err)
	}
	// 4 expert comparisons cannot pay any expert rung — even the shrunk
	// rung's 2-element duel estimates 6 — so the controller goes straight
	// to the naive majority without burning an attempt.
	if out.Rung.Name != "naive-majority" {
		t.Fatalf("starved run landed on %q, want naive-majority", out.Rung.Name)
	}
	if !containsItem(out.Candidates, out.Best) {
		t.Fatalf("starved run returned %+v, not a member of the candidate set %v", out.Best, out.Candidates)
	}
}

func containsItem(items []item.Item, x item.Item) bool {
	for _, it := range items {
		if it == x {
			return true
		}
	}
	return false
}

func TestRunCrashStaysFatal(t *testing.T) {
	// An injected crash models process death: the degrade layer must NOT
	// absorb it — recovery happens through checkpoint resume.
	crash := chaos.NewCrash(5)
	naive, expert, _ := runOracles(dispatch.NewSimulated(worker.Truth))
	naiveCrash := tournament.NewBackendOracle(
		crash.Wrap(dispatch.NewSimulated(worker.Truth)), worker.Naive, cost.NewLedger(), tournament.NewMemo())
	_ = naive
	ctl := mustController(t, Config{})
	_, err := Run(context.Background(), testItems(40), naiveCrash, expert, ctl, Options{Un: 3})
	if err == nil || !errors.Is(err, chaos.ErrCrash) {
		t.Fatalf("crash during phase 1: err = %v, want ErrCrash", err)
	}
}

func TestRunPhase1FailureFallsToBestSoFar(t *testing.T) {
	// A naive backend that dies recoverably during the filter leaves no
	// candidate set; the only honest outcome is best-so-far with no error.
	dead := &failAfter{inner: dispatch.NewSimulated(worker.Truth), n: 3, err: dispatch.ErrBackendUnavailable}
	led := cost.NewLedger()
	naive := tournament.NewBackendOracle(dead, worker.Naive, led, tournament.NewMemo())
	expert := tournament.NewOracle(worker.Truth, worker.Expert, led, tournament.NewMemo())
	ctl := mustController(t, Config{})
	out, err := Run(context.Background(), testItems(40), naive, expert, ctl, Options{Un: 3})
	if err != nil {
		t.Fatalf("recoverable phase-1 failure surfaced an error: %v", err)
	}
	if out.Rung.Kind != RungBestSoFar || out.Rung.Guarantee != GuaranteeNone {
		t.Fatalf("phase-1 failure landed on %q (%q), want best-so-far (no guarantee)",
			out.Rung.Name, out.Rung.Guarantee)
	}
	if out.Phase1Complete {
		t.Fatal("Phase1Complete true after a failed filter")
	}
	reason := out.Decisions[len(out.Decisions)-1].Reason
	if reason == "" {
		t.Fatal("best-so-far decision carries no skip reasons")
	}
}

func TestRunCancellationStaysFatal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	naive, expert, _ := runOracles(dispatch.NewSimulated(worker.Truth))
	ctl := mustController(t, Config{})
	_, err := Run(ctx, testItems(40), naive, expert, ctl, Options{Un: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
}
