package degrade

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"crowdmax/internal/chaos"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
)

func mustController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// healthy is a Signals sample under which every default rung is eligible.
func healthy() Signals {
	sig := Unconstrained()
	sig.Phase1Done = true
	sig.Candidates = 9
	return sig
}

func TestLadderValidate(t *testing.T) {
	cases := []struct {
		name   string
		ladder Ladder
		bad    string
	}{
		{name: "default", ladder: DefaultLadder()},
		{name: "empty", ladder: Ladder{}, bad: "empty"},
		{name: "unnamed", ladder: Ladder{{Kind: RungBestSoFar}}, bad: "no name"},
		{name: "duplicate", ladder: Ladder{
			{Name: "x", Kind: RungNaiveMajority, Guarantee: GuaranteeDeltaN},
			{Name: "x", Kind: RungBestSoFar},
		}, bad: "duplicate"},
		{name: "no terminal", ladder: Ladder{
			{Name: "x", Kind: RungNaiveMajority, Guarantee: GuaranteeDeltaN},
		}, bad: "best-so-far"},
		{name: "overclaimed label", ladder: Ladder{
			{Name: "x", Kind: RungNaiveMajority, Guarantee: Guarantee2DeltaE},
			{Name: "end", Kind: RungBestSoFar},
		}, bad: "stronger"},
	}
	for _, tc := range cases {
		err := tc.ladder.Validate()
		if tc.bad == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.bad) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.bad)
		}
	}
}

func TestGuaranteeStrengthOrdersTheLadder(t *testing.T) {
	l := DefaultLadder()
	for i := 1; i < len(l); i++ {
		if l[i-1].Guarantee.Strength() <= l[i].Guarantee.Strength() {
			t.Fatalf("rung %q (%q) is not stronger than %q (%q)",
				l[i-1].Name, l[i-1].Guarantee, l[i].Name, l[i].Guarantee)
		}
	}
}

// TestRungPreconditions drives every rung's precondition through Decide: a
// signal that violates exactly one precondition must skip the rung (and any
// stronger rung the same signal blocks), landing on the strongest still-
// eligible one.
func TestRungPreconditions(t *testing.T) {
	cases := []struct {
		name string
		sig  func() Signals
		want string // rung Decide must land on
	}{
		{name: "all clear", sig: healthy, want: "expert-2maxfind"},
		{name: "phase 1 incomplete", sig: func() Signals {
			s := healthy()
			s.Phase1Done = false
			return s
		}, want: "best-so-far"},
		{name: "empty candidate set", sig: func() Signals {
			s := healthy()
			s.Candidates = 0
			return s
		}, want: "best-so-far"},
		{name: "no active experts", sig: func() Signals {
			s := healthy()
			s.ActiveExperts = 0
			return s
		}, want: "naive-majority"},
		{name: "unknown pool size passes MinExperts", sig: func() Signals {
			s := healthy()
			s.ActiveExperts = -1
			return s
		}, want: "expert-2maxfind"},
		{name: "expert budget below full-set rungs falls to shrunk", sig: func() Signals {
			s := healthy()
			// 2-MaxFind over 9 needs 54; randomized needs 160·9 = 1440;
			// the shrunk rung's floor is a 2-element tournament (6).
			s.ExpertRemaining = 40
			return s
		}, want: "expert-shrunk"},
		{name: "expert budget fits only a shrunk subset", sig: func() Signals {
			s := healthy()
			s.ExpertRemaining = 10
			return s
		}, want: "expert-shrunk"},
		{name: "expert budget below even a 2-element tournament", sig: func() Signals {
			s := healthy()
			s.ExpertRemaining = 3
			return s
		}, want: "naive-majority"},
		{name: "expert and naive budgets exhausted", sig: func() Signals {
			s := healthy()
			s.ExpertRemaining = 0
			s.NaiveRemaining = 0
			return s
		}, want: "best-so-far"},
		{name: "deadline passed", sig: func() Signals {
			s := healthy()
			s.HasDeadline = true
			s.DeadlineLeft = 0
			return s
		}, want: "best-so-far"},
		{name: "deadline without latency model passes", sig: func() Signals {
			s := healthy()
			s.HasDeadline = true
			s.DeadlineLeft = time.Nanosecond
			return s
		}, want: "expert-2maxfind"},
	}
	for _, tc := range cases {
		ctl := mustController(t, Config{})
		got := ctl.Decide("start", tc.sig())
		if got.Name != tc.want {
			t.Errorf("%s: Decide landed on %q, want %q (reason log: %s)",
				tc.name, got.Name, tc.want, ctl.LastDecision().Reason)
		}
	}
}

// TestMinTrustGatesExpertRungs checks the MinTrust precondition: a rung
// demanding agreement-graph confidence is skipped while the extraction is
// collapsed, but the gate only engages when a graph scorer actually exposes
// the signal (TrustConfidence ≥ 0).
func TestMinTrustGatesExpertRungs(t *testing.T) {
	ladder := DefaultLadder()
	for i := range ladder {
		if ladder[i].expert() {
			ladder[i].MinTrust = 0.5
		}
	}
	cases := []struct {
		name string
		conf float64
		want string
	}{
		{name: "no graph scorer: gate disarmed", conf: -1, want: "expert-2maxfind"},
		{name: "collapsed trust blocks every expert rung", conf: 0.2, want: "naive-majority"},
		{name: "boundary confidence passes", conf: 0.5, want: "expert-2maxfind"},
		{name: "confident extraction passes", conf: 0.9, want: "expert-2maxfind"},
	}
	for _, tc := range cases {
		ctl := mustController(t, Config{Ladder: ladder})
		sig := healthy()
		sig.TrustConfidence = tc.conf
		got := ctl.Decide("start", sig)
		if got.Name != tc.want {
			t.Errorf("%s: Decide landed on %q, want %q (reason: %s)",
				tc.name, got.Name, tc.want, ctl.LastDecision().Reason)
		}
	}
}

// TestDeadlineVsCostEstimate checks the CmpLatency precondition: a rung
// whose estimated comparisons cannot finish before the deadline is skipped
// in favor of a cheaper one.
func TestDeadlineVsCostEstimate(t *testing.T) {
	ctl := mustController(t, Config{CmpLatency: time.Millisecond})
	sig := healthy()
	sig.HasDeadline = true
	// 2-MaxFind over 9 candidates estimates 55 comparisons = 55ms; the
	// randomized rung estimates 1440; the shrunk rung's 2-element floor
	// estimates 6.
	sig.DeadlineLeft = 40 * time.Millisecond
	if got := ctl.Decide("start", sig); got.Name != "expert-shrunk" {
		t.Fatalf("40ms deadline: Decide landed on %q, want expert-shrunk (%s)",
			got.Name, ctl.LastDecision().Reason)
	}
	// A deadline below every rung's estimate leaves only the terminal rung.
	sig.DeadlineLeft = 3 * time.Millisecond
	if got := ctl.Decide("error", sig); got.Kind != RungBestSoFar {
		t.Fatalf("3ms deadline: Decide landed on %q, want best-so-far (%s)",
			got.Name, ctl.LastDecision().Reason)
	}
}

// TestDowngradeTriggers reports each mid-phase trigger to the controller
// and checks the next decision lands on the expected weaker rung.
func TestDowngradeTriggers(t *testing.T) {
	errBudget := fmt.Errorf("spend: %w", dispatch.ErrBudgetExhausted)
	errUnavailable := fmt.Errorf("expert pool: %w", dispatch.ErrBackendUnavailable)
	errPermanent := fmt.Errorf("expert gone: %w", dispatch.ErrPermanent)

	cases := []struct {
		name string
		err  error
		sig  func() Signals // post-failure signal sample
		want string
	}{
		{
			// Budget exhaustion mid-rung: the budget signal now reads 0,
			// so every expert rung is blocked on its cost estimate.
			name: "ErrBudgetExhausted",
			err:  errBudget,
			sig: func() Signals {
				s := healthy()
				s.ExpertRemaining = 0
				return s
			},
			want: "naive-majority",
		},
		{
			// A transient outage burns attempts: after MaxAttempts (2)
			// failures of the top rung, the walk moves past it. The first
			// failure retries the same rung — checked separately below.
			name: "ErrBackendUnavailable",
			err:  errUnavailable,
			sig:  healthy,
			want: "expert-2maxfind",
		},
		{
			// A permanent expert error kills every expert rung at once.
			name: "ErrPermanent",
			err:  errPermanent,
			sig:  healthy,
			want: "naive-majority",
		},
		{
			// Quarantine below MinActive: the pool signal drops under the
			// rung's MinExperts.
			name: "quarantine below MinActive",
			err:  errUnavailable,
			sig: func() Signals {
				s := healthy()
				s.ActiveExperts = 0
				return s
			},
			want: "naive-majority",
		},
		{
			// Deadline shrank below the full-set rungs' cost estimates
			// mid-run; only the cheap shrunk rung still fits.
			name: "deadline below cost estimate",
			err:  errUnavailable,
			sig: func() Signals {
				s := healthy()
				s.HasDeadline = true
				s.DeadlineLeft = 40 * time.Millisecond
				return s
			},
			want: "expert-shrunk",
		},
	}
	for _, tc := range cases {
		ctl := mustController(t, Config{CmpLatency: time.Millisecond})
		first := ctl.Decide("start", healthy())
		if first.Name != "expert-2maxfind" {
			t.Fatalf("%s: first decision %q, want expert-2maxfind", tc.name, first.Name)
		}
		if fatal := ctl.Report(first, tc.err); fatal {
			t.Fatalf("%s: Report classified %v as fatal", tc.name, tc.err)
		}
		got := ctl.Decide("error", tc.sig())
		if got.Name != tc.want {
			t.Errorf("%s: post-failure decision %q, want %q (%s)",
				tc.name, got.Name, tc.want, ctl.LastDecision().Reason)
		}
	}
}

// TestMaxAttemptsExhaustsARung checks the attempt counter: a rung that
// keeps failing transiently is abandoned after MaxAttempts tries.
func TestMaxAttemptsExhaustsARung(t *testing.T) {
	ctl := mustController(t, Config{MaxAttempts: 2})
	for i := 0; i < 2; i++ {
		r := ctl.Decide("error", healthy())
		if r.Name != "expert-2maxfind" {
			t.Fatalf("attempt %d landed on %q, want expert-2maxfind", i, r.Name)
		}
		ctl.Report(r, dispatch.ErrBackendUnavailable)
	}
	r := ctl.Decide("error", healthy())
	if r.Name != "expert-randomized" {
		t.Fatalf("post-exhaustion decision %q, want expert-randomized (%s)",
			r.Name, ctl.LastDecision().Reason)
	}
	if dir := ctl.LastDecision().Direction(); dir >= 0 {
		t.Fatalf("downgrade decision direction %d, want negative", dir)
	}
}

// TestUpwardRecovery is the satellite's recovery case: a rung blocked by a
// quarantined pool becomes eligible again when the pool heals, and the
// controller climbs back up.
func TestUpwardRecovery(t *testing.T) {
	ctl := mustController(t, Config{})
	sick := healthy()
	sick.ActiveExperts = 0
	if r := ctl.Decide("start", sick); r.Name != "naive-majority" {
		t.Fatalf("sick pool decision %q, want naive-majority", r.Name)
	}
	healed := healthy()
	healed.ActiveExperts = 3
	r := ctl.Decide("error", healed)
	if r.Name != "expert-2maxfind" {
		t.Fatalf("healed pool decision %q, want expert-2maxfind (%s)",
			r.Name, ctl.LastDecision().Reason)
	}
	if dir := ctl.LastDecision().Direction(); dir <= 0 {
		t.Fatalf("recovery decision direction %d, want positive", dir)
	}
}

func TestFatalErrorsHaltTheLadder(t *testing.T) {
	for _, err := range []error{
		fmt.Errorf("run: %w", chaos.ErrCrash),
		context.Canceled,
		context.DeadlineExceeded,
	} {
		ctl := mustController(t, Config{})
		r := ctl.Decide("start", healthy())
		if fatal := ctl.Report(r, err); !fatal {
			t.Errorf("Report(%v) not fatal", err)
		}
		if next := ctl.Decide("error", healthy()); next.Kind != RungBestSoFar {
			t.Errorf("post-fatal decision %q, want the terminal rung", next.Name)
		}
	}
	// An injected crash wraps ErrPermanent; it must be classified as a
	// crash (fatal), not as a dead backend (degradable).
	ctl := mustController(t, Config{})
	r := ctl.Decide("start", healthy())
	if !ctl.Report(r, chaos.ErrCrash) {
		t.Fatal("ErrCrash (which wraps ErrPermanent) was not classified fatal")
	}
}

func TestDecisionLogAndHash(t *testing.T) {
	walk := func() *Controller {
		ctl := mustController(t, Config{})
		r := ctl.Decide("start", healthy())
		ctl.Report(r, dispatch.ErrBudgetExhausted)
		sig := healthy()
		sig.ExpertRemaining = 0
		ctl.Decide("error", sig)
		return ctl
	}
	a, b := walk(), walk()
	if a.LogHash() != b.LogHash() {
		t.Fatal("identical walks produced different log hashes")
	}
	other := mustController(t, Config{})
	other.Decide("start", healthy())
	if a.LogHash() == other.LogHash() {
		t.Fatal("different walks produced the same log hash")
	}
	rung, hash := a.Snapshot()
	if rung != "naive-majority" || hash != a.LogHash() {
		t.Fatalf("Snapshot() = (%q, %#x), want (naive-majority, %#x)", rung, hash, a.LogHash())
	}
	log := a.Decisions()
	if len(log) != 2 || log[0].To != "expert-2maxfind" || log[1].To != "naive-majority" {
		t.Fatalf("decision log %+v does not record the walk", log)
	}
	if !strings.Contains(log[1].Reason, "budget") {
		t.Fatalf("downgrade reason %q does not name the budget", log[1].Reason)
	}
}

func TestShrinkIsDeterministicAndBudgetSized(t *testing.T) {
	cands := make([]item.Item, 20)
	for i := range cands {
		cands[i] = item.Item{ID: i + 1, Value: float64(i)}
	}
	ctl := mustController(t, Config{Seed: 42})

	// Unconstrained: the full set comes back untouched.
	if got := ctl.Shrink(cands, -1); len(got) != len(cands) {
		t.Fatalf("unconstrained Shrink returned %d of %d", len(got), len(cands))
	}

	// Budget 40 admits k with 2k^1.5 ≤ 40, i.e. k = 7.
	got := ctl.Shrink(cands, 40)
	if len(got) != 7 {
		t.Fatalf("Shrink(40) returned %d candidates, want 7", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID >= got[i].ID {
			t.Fatal("Shrink did not preserve candidate order")
		}
	}

	// Repeated calls (replay) pick the same subset.
	again := ctl.Shrink(cands, 40)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("Shrink is not deterministic across calls")
		}
	}

	// Even a starved budget keeps 2 elements — the smallest real tournament.
	if got := ctl.Shrink(cands, 0); len(got) != 2 {
		t.Fatalf("Shrink(0) returned %d candidates, want the 2-element floor", len(got))
	}
}

func TestNaturalRung(t *testing.T) {
	cases := []struct {
		phase2 int
		name   string
		g      Guarantee
	}{
		{0, "expert-2maxfind", Guarantee2DeltaE},
		{1, "expert-randomized", Guarantee3DeltaEWHP},
		{2, "expert-all-play-all", Guarantee2DeltaE},
		{99, "best-so-far", GuaranteeNone},
	}
	for _, tc := range cases {
		name, g := NaturalRung(tc.phase2)
		if name != tc.name || g != tc.g {
			t.Errorf("NaturalRung(%d) = (%q, %q), want (%q, %q)", tc.phase2, name, g, tc.name, tc.g)
		}
	}
}
