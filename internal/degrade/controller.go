package degrade

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"crowdmax/internal/chaos"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

// Signals is one sample of the live inputs a ladder decision consumes. The
// session layer fills it from the budget, the expert worker pool, and the
// context deadline; unknown fields use their documented "no information"
// value so a sparse sample never blocks a rung spuriously.
type Signals struct {
	// ExpertRemaining and NaiveRemaining are the comparisons the budget
	// would still admit per class (Budget.RemainingFor); -1 = unconstrained.
	ExpertRemaining, NaiveRemaining int64
	// ActiveExperts is the expert pool's non-quarantined worker count, or
	// -1 when no pool exposes one.
	ActiveExperts int
	// TrustConfidence is the worker pool's latest agreement-graph
	// extraction confidence in [0, 1] (dispatch.Pool.TrustConfidence), or
	// -1 when no graph scorer runs — rungs with MinTrust set refuse to run
	// on a pool whose trust core has collapsed.
	TrustConfidence float64
	// HasDeadline reports whether the run context carries a deadline;
	// DeadlineLeft is the time remaining when it does.
	HasDeadline  bool
	DeadlineLeft time.Duration
	// Phase1Done reports whether the filter phase completed, and
	// Candidates the size of its output. Filled by Run, not the sampler.
	Phase1Done bool
	Candidates int
}

// Unconstrained returns a Signals sample carrying no information: budgets
// unconstrained, pool size unknown, no deadline.
func Unconstrained() Signals {
	return Signals{ExpertRemaining: -1, NaiveRemaining: -1, ActiveExperts: -1, TrustConfidence: -1}
}

// Config configures a Controller.
type Config struct {
	// Ladder is the quality ladder; defaults to DefaultLadder().
	Ladder Ladder
	// MaxAttempts is how many times a rung may fail before the controller
	// stops retrying it. Defaults to 2.
	MaxAttempts int
	// Seed drives the controller's seeded choices (the shrunk rung's
	// subset sample).
	Seed uint64
	// CmpLatency, when > 0, converts a rung's comparison cost estimate
	// into wall time for the deadline precondition.
	CmpLatency time.Duration
}

// Decision is one entry of the controller's append-only decision log.
type Decision struct {
	// Seq numbers the decision within the run, from 0.
	Seq int
	// Point names the decision point: "start", "error" (after a mid-phase
	// failure), or the label the caller passed.
	Point string
	// From and To name the previous and chosen rung (From is "" on the
	// first decision); FromIndex and ToIndex are their ladder positions
	// (FromIndex -1 on the first decision).
	From, To           string
	FromIndex, ToIndex int
	// Reason records why every rung above To was skipped, ";"-joined.
	Reason string
}

// Direction classifies the decision: negative for a downgrade (weaker
// rung), positive for a recovery (stronger rung), 0 for a stay or the
// first decision.
func (d Decision) Direction() int {
	if d.FromIndex < 0 || d.FromIndex == d.ToIndex {
		return 0
	}
	// Ladder index grows as strength falls.
	return d.FromIndex - d.ToIndex
}

// Controller supervises one run's walk along the quality ladder. It is an
// explicit state machine: Decide picks the strongest eligible rung for the
// current Signals sample, Report classifies a rung's failure (counting
// attempts, marking a worker class dead on permanent errors, halting on
// fatal ones), and the decision log — hashed into checkpoints — records
// every move with its reason. Safe for concurrent use, though a run drives
// it from one goroutine.
type Controller struct {
	mu       sync.Mutex
	cfg      Config
	failures []int
	cur      int // ladder index of the current rung, -1 before the first decision
	seq      int
	log      []Decision

	expertDead bool // a permanent expert-backend error was reported
	naiveDead  bool // a permanent naïve-backend error was reported
	halted     bool // a fatal error was reported; only best-so-far remains
}

// NewController validates cfg (defaults applied) and returns a fresh
// controller positioned above the ladder's top rung.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Ladder == nil {
		cfg.Ladder = DefaultLadder()
	}
	if err := cfg.Ladder.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2
	}
	return &Controller{cfg: cfg, failures: make([]int, len(cfg.Ladder)), cur: -1}, nil
}

// Ladder returns the controller's validated ladder.
func (c *Controller) Ladder() Ladder { return c.cfg.Ladder }

// Decide picks the strongest eligible rung under sig, appends the decision
// (with the skip reasons for every stronger rung) to the log, and returns
// it. Decisions are deterministic in (ladder, signals, failure state) — an
// upward recovery happens naturally when a previously blocked rung's
// precondition clears, e.g. a quarantined expert pool heals past
// MinExperts, as long as the rung has attempts left.
func (c *Controller) Decide(point string, sig Signals) Rung {
	c.mu.Lock()
	defer c.mu.Unlock()
	var skipped []string
	chosen := len(c.cfg.Ladder) - 1
	for i, r := range c.cfg.Ladder {
		if reason := c.blockedLocked(i, r, sig); reason != "" {
			skipped = append(skipped, r.Name+": "+reason)
			continue
		}
		chosen = i
		break
	}
	d := Decision{
		Seq: c.seq, Point: point,
		FromIndex: c.cur, ToIndex: chosen,
		To:     c.cfg.Ladder[chosen].Name,
		Reason: strings.Join(skipped, "; "),
	}
	if c.cur >= 0 {
		d.From = c.cfg.Ladder[c.cur].Name
	}
	c.seq++
	c.log = append(c.log, d)
	c.cur = chosen
	return c.cfg.Ladder[chosen]
}

// blockedLocked returns "" when rung i is eligible under sig, else the
// reason it is not. Callers hold c.mu.
func (c *Controller) blockedLocked(i int, r Rung, sig Signals) string {
	if r.Kind == RungBestSoFar {
		return "" // the terminal rung is always eligible
	}
	if c.halted {
		return "run halted by a fatal error"
	}
	if c.failures[i] >= c.cfg.MaxAttempts {
		return fmt.Sprintf("failed %d times", c.failures[i])
	}
	if r.expert() && c.expertDead {
		return "expert backend permanently failed"
	}
	if !r.expert() && c.naiveDead {
		return "naive backend permanently failed"
	}
	if !sig.Phase1Done || sig.Candidates == 0 {
		return "no candidate set (phase 1 incomplete)"
	}
	if r.MinExperts > 0 && sig.ActiveExperts >= 0 && sig.ActiveExperts < r.MinExperts {
		return fmt.Sprintf("%d active experts < MinExperts %d", sig.ActiveExperts, r.MinExperts)
	}
	if r.MinTrust > 0 && sig.TrustConfidence >= 0 && sig.TrustConfidence < r.MinTrust {
		return fmt.Sprintf("trust confidence %.2f < MinTrust %.2f", sig.TrustConfidence, r.MinTrust)
	}
	cost := r.CostEstimate(sig.Candidates)
	remaining := sig.NaiveRemaining
	if r.expert() {
		remaining = sig.ExpertRemaining
	}
	if remaining >= 0 {
		if remaining < cost {
			return fmt.Sprintf("budget %d < cost estimate %d", remaining, cost)
		}
		if remaining < r.MinBudget {
			return fmt.Sprintf("budget %d < MinBudget %d", remaining, r.MinBudget)
		}
	}
	if sig.HasDeadline {
		if sig.DeadlineLeft <= 0 {
			return "deadline passed"
		}
		if c.cfg.CmpLatency > 0 && time.Duration(cost)*c.cfg.CmpLatency > sig.DeadlineLeft {
			return fmt.Sprintf("cost estimate %d × %v exceeds deadline %v",
				cost, c.cfg.CmpLatency, sig.DeadlineLeft)
		}
	}
	return ""
}

// Report classifies err — a failure of the given rung — and updates the
// failure state. It returns true when the error is fatal (an injected
// crash, or context cancellation/deadline): the run must stop and surface
// err rather than degrade further. Permanent backend errors mark the rung's
// worker class dead; anything else (budget exhaustion, an unavailable
// backend, quarantine starvation) just burns one of the rung's attempts.
func (c *Controller) Report(r Rung, err error) (fatal bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, lr := range c.cfg.Ladder {
		if lr.Name == r.Name {
			c.failures[i]++
			break
		}
	}
	switch {
	// ErrCrash wraps ErrPermanent, so the crash test comes first: a crash
	// models process death and must stay fatal even under degradation —
	// recovery is Resume's job, not the ladder's.
	case errors.Is(err, chaos.ErrCrash),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		c.halted = true
		return true
	case errors.Is(err, dispatch.ErrPermanent):
		if r.expert() {
			c.expertDead = true
		} else {
			c.naiveDead = true
		}
	}
	return false
}

// ReportPhase1 classifies a filter-phase failure the same way Report does
// for rung failures, attributing permanent errors to the naïve class.
func (c *Controller) ReportPhase1(err error) (fatal bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case errors.Is(err, chaos.ErrCrash),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		c.halted = true
		return true
	case errors.Is(err, dispatch.ErrPermanent):
		c.naiveDead = true
	}
	return false
}

// Shrink returns a seeded random subset of candidates sized so 2-MaxFind
// over it fits within remaining expert comparisons (minimum 2 elements),
// preserving candidate order. remaining < 0 (unconstrained) returns the
// full set. The sample is drawn from a fresh child of the controller seed
// on every call, so repeated calls — and a resumed run's replay — pick the
// same subset.
func (c *Controller) Shrink(candidates []item.Item, remaining int64) []item.Item {
	k := len(candidates)
	if remaining >= 0 {
		for k > 2 && shrunkCost(k) > remaining {
			k--
		}
	}
	if k >= len(candidates) {
		return candidates
	}
	r := rng.New(c.cfg.Seed).Child("shrink")
	idx := make([]int, len(candidates))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	idx = idx[:k]
	sort.Ints(idx)
	out := make([]item.Item, k)
	for i, j := range idx {
		out[i] = candidates[j]
	}
	return out
}

// Decisions returns a copy of the decision log.
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Decision, len(c.log))
	copy(out, c.log)
	return out
}

// LastDecision returns the most recent decision (zero before any Decide).
func (c *Controller) LastDecision() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.log) == 0 {
		return Decision{}
	}
	return c.log[len(c.log)-1]
}

// Snapshot returns the current rung name ("" before the first decision)
// and the decision-log hash — the pair checkpoint snapshots carry so a
// resumed run can be checked against the rung it originally reached.
func (c *Controller) Snapshot() (rung string, logHash uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur >= 0 {
		rung = c.cfg.Ladder[c.cur].Name
	}
	return rung, c.logHashLocked()
}

// LogHash returns the FNV-1a hash of the decision log: one line per
// decision, "seq|point|from|to|reason". Two runs with identical hashes made
// identical ladder walks for identical reasons.
func (c *Controller) LogHash() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logHashLocked()
}

func (c *Controller) logHashLocked() uint64 {
	h := fnv.New64a()
	for _, d := range c.log {
		fmt.Fprintf(h, "%d|%s|%s|%s|%s\n", d.Seq, d.Point, d.From, d.To, d.Reason)
	}
	return h.Sum64()
}
