// Package degrade implements graceful degradation for two-phase max-finding
// runs: an explicit quality ladder plus a supervisor (Controller) that walks
// a run down the ladder when worker classes fail, budgets drain, or
// deadlines close in — and back up when a quarantined pool heals.
//
// The paper's guarantees are tiered: phase 2 with experts yields
// d(M, e) ≤ 2δe (2-MaxFind, Theorem 1) or ≤ 3δe w.h.p. (the randomized
// Algorithm 5), while naïve-only answers can only be trusted to δn. A
// production run should therefore not die when the expert backend goes
// away mid-phase-2: it should fall to the strongest rung whose
// preconditions still hold, keep serving, and report the guarantee it
// actually achieved. Each Rung is a named policy with machine-checkable
// preconditions (minimum budget headroom, minimum active experts, remaining
// deadline vs. a cost estimate) and a Guarantee label; the Controller makes
// deterministic, seeded decisions at phase boundaries and on mid-phase
// failures, records every decision in an append-only log whose FNV hash is
// checkpointed, and never reports a label stronger than the rung that
// produced the answer.
//
// Decisions are pure functions of the ladder, the live Signals sample, and
// the controller's accumulated failure state — no wall clock, no unseeded
// randomness — so a resumed run replaying the same comparison stream lands
// on the same rung with the same decision log.
package degrade

import (
	"fmt"
	"math"
)

// Guarantee is a machine-checkable quality label: the distance bound that
// holds between the returned element and the true maximum.
type Guarantee string

// The guarantee labels of the default ladder, strongest first.
const (
	// Guarantee2DeltaE is Theorem 1's deterministic bound d(M, e) ≤ 2δe
	// (2-MaxFind or all-play-all over the full candidate set).
	Guarantee2DeltaE Guarantee = "2δe"
	// Guarantee3DeltaEWHP is the randomized phase 2's bound d(M, e) ≤ 3δe
	// with high probability (Lemma 4).
	Guarantee3DeltaEWHP Guarantee = "3δe-whp"
	// Guarantee2DeltaESubset is 2δe relative to a shrunk candidate subset:
	// the expert tournament was exact, but over a budget-sized sample of S
	// that may have dropped the true maximum.
	Guarantee2DeltaESubset Guarantee = "2δe@subset"
	// GuaranteeDeltaN is the naïve-only bound δn: the answer is a
	// majority-vote winner among the candidates using naïve workers.
	GuaranteeDeltaN Guarantee = "δn"
	// GuaranteeNone marks a best-so-far answer with no distance bound.
	GuaranteeNone Guarantee = "best-so-far"
)

// Strength totally orders guarantees; higher is stronger. Unknown labels
// rank 0, alongside GuaranteeNone.
func (g Guarantee) Strength() int {
	switch g {
	case Guarantee2DeltaE:
		return 4
	case Guarantee3DeltaEWHP:
		return 3
	case Guarantee2DeltaESubset:
		return 2
	case GuaranteeDeltaN:
		return 1
	default:
		return 0
	}
}

// RungKind selects the policy a ladder rung executes.
type RungKind int

const (
	// RungExpert2MaxFind runs 2-MaxFind over the full candidate set.
	RungExpert2MaxFind RungKind = iota
	// RungExpertRandomized runs the randomized Algorithm 5 over the full
	// candidate set.
	RungExpertRandomized
	// RungExpertShrunk runs 2-MaxFind over a seeded random subset of the
	// candidates sized to the remaining expert budget.
	RungExpertShrunk
	// RungNaiveMajority runs an all-play-all tournament over the
	// candidates with naïve workers and returns the win-count leader.
	RungNaiveMajority
	// RungBestSoFar returns the best answer established so far without
	// spending another comparison. Always eligible; every ladder ends here.
	RungBestSoFar
)

// String returns the kind's policy name.
func (k RungKind) String() string {
	switch k {
	case RungExpert2MaxFind:
		return "expert-2maxfind"
	case RungExpertRandomized:
		return "expert-randomized"
	case RungExpertShrunk:
		return "expert-shrunk"
	case RungNaiveMajority:
		return "naive-majority"
	case RungBestSoFar:
		return "best-so-far"
	default:
		return fmt.Sprintf("rung(%d)", int(k))
	}
}

// Rung is one named policy on the quality ladder.
type Rung struct {
	// Name identifies the rung in decisions, results, and checkpoints.
	Name string
	// Kind selects the policy the rung executes.
	Kind RungKind
	// Guarantee is the label an answer produced by this rung may carry.
	Guarantee Guarantee
	// MinExperts is the minimum number of active expert workers required
	// (checked against Signals.ActiveExperts when the pool exposes it);
	// 0 = no requirement.
	MinExperts int
	// MinBudget is an explicit floor on remaining comparisons for the
	// rung's worker class, checked in addition to the cost estimate;
	// 0 = no floor.
	MinBudget int64
	// MinTrust is the minimum agreement-graph extraction confidence
	// (Signals.TrustConfidence) the rung requires; checked only when a
	// graph scorer exposes the signal. 0 = no requirement.
	MinTrust float64
}

// expert reports whether the rung spends expert comparisons.
func (r Rung) expert() bool {
	switch r.Kind {
	case RungExpert2MaxFind, RungExpertRandomized, RungExpertShrunk:
		return true
	}
	return false
}

// CostEstimate returns the rung's worst-case comparison count over s
// candidates in its worker class — the number the controller holds against
// remaining budget and deadline. Estimates lean pessimistic: refusing a
// rung the budget could just barely afford only costs quality, while
// committing to one it cannot afford wastes the comparisons already spent
// when the refusal lands.
func (r Rung) CostEstimate(s int) int64 {
	if s < 0 {
		s = 0
	}
	switch r.Kind {
	case RungExpert2MaxFind:
		return int64(math.Ceil(2 * math.Pow(float64(s), 1.5)))
	case RungExpertRandomized:
		// Algorithm 5's Θ(un) hides large constants; 160·s tracks the
		// measured constant of this implementation's repetition counts.
		return 160 * int64(s)
	case RungExpertShrunk:
		// The shrunk rung sizes its subset to the budget, so its minimum
		// viable spend is a 2-element tournament.
		return shrunkCost(2)
	case RungNaiveMajority:
		return int64(s) * int64(s-1) / 2
	default:
		return 0
	}
}

// shrunkCost is 2-MaxFind's worst case over k elements — what the shrunk
// rung pays for a subset of size k.
func shrunkCost(k int) int64 {
	return int64(math.Ceil(2 * math.Pow(float64(k), 1.5)))
}

// Ladder is an ordered quality ladder, strongest rung first. The controller
// always picks the first eligible rung, so order encodes preference.
type Ladder []Rung

// DefaultLadder returns the standard five-rung ladder, strongest first:
//
//	expert-2maxfind   (2δe)         2-MaxFind over S
//	expert-randomized (3δe-whp)     Algorithm 5 over S
//	expert-shrunk     (2δe@subset)  2-MaxFind over a budget-sized sample of S
//	naive-majority    (δn)          all-play-all over S with naïve workers
//	best-so-far       (no bound)    return the current leader, spend nothing
func DefaultLadder() Ladder {
	return Ladder{
		{Name: "expert-2maxfind", Kind: RungExpert2MaxFind, Guarantee: Guarantee2DeltaE, MinExperts: 1},
		{Name: "expert-randomized", Kind: RungExpertRandomized, Guarantee: Guarantee3DeltaEWHP, MinExperts: 1},
		{Name: "expert-shrunk", Kind: RungExpertShrunk, Guarantee: Guarantee2DeltaESubset, MinExperts: 1},
		{Name: "naive-majority", Kind: RungNaiveMajority, Guarantee: GuaranteeDeltaN},
		{Name: "best-so-far", Kind: RungBestSoFar, Guarantee: GuaranteeNone},
	}
}

// Validate checks structural invariants: at least one rung, unique names, a
// terminal RungBestSoFar (so the controller always has an eligible rung),
// and no rung claiming a label stronger than its kind can honestly produce.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("degrade: empty ladder")
	}
	seen := make(map[string]bool, len(l))
	for i, r := range l {
		if r.Name == "" {
			return fmt.Errorf("degrade: rung %d has no name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("degrade: duplicate rung name %q", r.Name)
		}
		seen[r.Name] = true
		if max := maxGuarantee(r.Kind); r.Guarantee.Strength() > max.Strength() {
			return fmt.Errorf("degrade: rung %q claims %q, stronger than its policy %s can deliver (%q)",
				r.Name, r.Guarantee, r.Kind, max)
		}
	}
	if last := l[len(l)-1]; last.Kind != RungBestSoFar {
		return fmt.Errorf("degrade: ladder must end in a best-so-far rung, ends in %q", last.Name)
	}
	return nil
}

// maxGuarantee is the strongest label each policy kind can honestly carry.
func maxGuarantee(k RungKind) Guarantee {
	switch k {
	case RungExpert2MaxFind:
		return Guarantee2DeltaE
	case RungExpertRandomized:
		return Guarantee3DeltaEWHP
	case RungExpertShrunk:
		return Guarantee2DeltaESubset
	case RungNaiveMajority:
		return GuaranteeDeltaN
	default:
		return GuaranteeNone
	}
}

// StrongestLabel returns the strongest guarantee the named quality rung may
// honestly attach to an answer, over the standard rung names — the
// DefaultLadder rungs, the undegraded "expert-all-play-all" natural rung,
// and the crowd-scoring rungs ("score-expert": experts extracted the answer
// from a score-derived shortlist, so the bound is 2δe relative to that
// subset; "score-naive": the answer is only the aggregated-score leader).
// ok is false for names outside that set; harnesses and services use the
// pair to reject results that claim an unknown rung or a label stronger than
// the rung can deliver.
func StrongestLabel(rung string) (g Guarantee, ok bool) {
	switch rung {
	case "expert-2maxfind", "expert-all-play-all":
		return Guarantee2DeltaE, true
	case "expert-randomized":
		return Guarantee3DeltaEWHP, true
	case "expert-shrunk", "score-expert":
		return Guarantee2DeltaESubset, true
	case "naive-majority", "score-naive":
		return GuaranteeDeltaN, true
	case "best-so-far":
		return GuaranteeNone, true
	}
	return GuaranteeNone, false
}

// NaturalRung returns the rung name and guarantee label of an undegraded
// run for the given phase-2 algorithm index (core.Phase2Algorithm values:
// 0 = 2-MaxFind, 1 = randomized, 2 = all-play-all) — the labels a session
// without a degrade controller attaches to a clean result.
func NaturalRung(phase2 int) (string, Guarantee) {
	switch phase2 {
	case 0:
		return "expert-2maxfind", Guarantee2DeltaE
	case 1:
		return "expert-randomized", Guarantee3DeltaEWHP
	case 2:
		return "expert-all-play-all", Guarantee2DeltaE
	default:
		return "best-so-far", GuaranteeNone
	}
}
