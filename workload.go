package crowdmax

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"crowdmax/internal/checkpoint"
	"crowdmax/internal/core"
	"crowdmax/internal/degrade"
	"crowdmax/internal/tournament"
)

// The registered workload kinds — the strings Session.Run stamps into
// checkpoints, job records, and event streams, and Resume dispatches on.
const (
	// MaxFindKind is the original two-phase max-finding workload.
	MaxFindKind = checkpoint.KindMaxFind
	// TopKKind is the top-k ranking workload (TopKWorkload).
	TopKKind = "top-k"
	// ScoreKind is the crowd-scoring workload (ScoreWorkload).
	ScoreKind = "score"
)

// Workload is a session-servable crowd algorithm: max-finding, top-k
// ranking, crowd scoring. A workload declares its kind (the name stamped
// into checkpoints and job records), validates the session configuration it
// needs, and runs against the engine-wired environment — oracles with
// backends, budget, chaos, health, and checkpoint plumbing already attached.
// Construct instances with MaxFind, TopKWorkload, or ScoreWorkload; the
// interface's methods are unexported because a workload needs the session
// package's internal plumbing to run.
type Workload interface {
	// Kind names the workload ("max-find", "top-k", "score").
	Kind() string
	// validate rejects session configurations the workload cannot run on.
	validate(cfg *Config, nItems int) error
	// prepare runs after the engine wires the environment but before the
	// "start" checkpoint boundary: workloads create controllers, decode
	// their resume blob, and register snapshot hooks here.
	prepare(env *runEnv) error
	// run executes the workload. It owns the tail of the run: merging the
	// run ledger into the session ledger and labelling the Result honestly.
	run(ctx context.Context, env *runEnv) (Result, error)
}

// runEnv is the engine-wired environment a workload runs against: the
// session, input, oracles (backends/budget attached), checkpoint writer,
// resume snapshot, and the live handles degrade controllers sample.
type runEnv struct {
	s          *Session
	items      []Item
	resume     *checkpoint.State
	runLedger  *Ledger
	budget     *Budget
	r          *Rand
	no, eo     *Oracle
	ck         *ckWriter
	expertPool *WorkerPool
	naivePool  *WorkerPool
	hooks      *snapHooks
	// ctl is the run-scoped degrade controller (max-find); per-round
	// workloads register theirs through hooks instead.
	ctl *degrade.Controller
	// wl holds workload-private state created by prepare.
	wl any
}

// snapHooks is the mutable registration point between a workload and the
// checkpoint snapshot builder: the currently-supervising degrade controller
// (whose rung and decision hash ride in the snapshot) and the workload's
// opaque state-blob builder. Registered by prepare/run, read at every
// snapshot under the hook lock.
type snapHooks struct {
	mu   sync.Mutex
	ctl  *degrade.Controller
	blob func() []byte
}

func (h *snapHooks) setController(ctl *degrade.Controller) {
	h.mu.Lock()
	h.ctl = ctl
	h.mu.Unlock()
}

func (h *snapHooks) setBlob(f func() []byte) {
	h.mu.Lock()
	h.blob = f
	h.mu.Unlock()
}

// snapshot returns the registered controller and the workload blob rendered
// now. The blob builder is invoked under the hook lock; builders take only
// their own state locks.
func (h *snapHooks) snapshot() (*degrade.Controller, []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var blob []byte
	if h.blob != nil {
		blob = h.blob()
	}
	return h.ctl, blob
}

// ----------------------------------------------------------------------------
// max-find

// maxFindWorkload is the original two-phase algorithm as a Workload.
type maxFindWorkload struct{}

// MaxFind returns the two-phase max-finding workload — the algorithm
// Session.FindMax runs. Session.Run(ctx, MaxFind(), items) and
// Session.FindMaxContext(ctx, items) are the same call.
func MaxFind() Workload { return maxFindWorkload{} }

// Kind implements Workload.
func (maxFindWorkload) Kind() string { return MaxFindKind }

func (maxFindWorkload) validate(cfg *Config, nItems int) error { return nil }

func (maxFindWorkload) prepare(env *runEnv) error {
	if d := env.s.cfg.Degrade; d != nil {
		ctl, err := degrade.NewController(degrade.Config{
			Ladder:      d.Ladder,
			MaxAttempts: d.MaxAttempts,
			Seed:        env.r.Seed(),
			CmpLatency:  d.CmpLatency,
		})
		if err != nil {
			return err
		}
		env.ctl = ctl
		env.hooks.setController(ctl)
	}
	return nil
}

func (maxFindWorkload) run(ctx context.Context, env *runEnv) (Result, error) {
	s := env.s
	if env.ctl != nil {
		return s.findMaxDegraded(ctx, env, env.ctl)
	}
	opt := core.FindMaxOptions{
		Un:          s.cfg.Un,
		Phase2:      s.cfg.Phase2,
		TrackLosses: s.cfg.TrackLosses,
		Randomized:  core.RandomizedOptions{R: env.r.Child("phase2")},
		Scheduler:   s.cfg.Scheduler,
	}
	opt.OnPhase = s.phaseHook(env.ck)
	res, err := core.FindMax(ctx, env.items, env.no, env.eo, opt)
	if err == nil && env.ck != nil {
		// A boundary snapshot that failed to write cannot fail the run
		// through the backend path (no comparison follows it); surface it
		// here so checkpointed runs never report success without a
		// durable final snapshot.
		err = env.ck.Err()
	}
	s.ledger.Add(env.runLedger)
	rung, guarantee := degrade.NaturalRung(int(s.cfg.Phase2))
	if err != nil {
		// A truncated run's Best is a best-so-far leader; claiming the
		// phase-2 algorithm's bound for it would overstate the quality.
		rung, guarantee = "best-so-far", GuaranteeNone
	}
	return Result{
		Best:              res.Best,
		Candidates:        res.Candidates,
		NaiveComparisons:  env.runLedger.Naive(),
		ExpertComparisons: env.runLedger.Expert(),
		Cost:              env.runLedger.Cost(s.cfg.Prices),
		Rung:              rung,
		Guarantee:         guarantee,
		Phase1Complete:    len(res.Candidates) > 0,
		Decisions:         nil,
	}, err
}

// ----------------------------------------------------------------------------
// top-k

// topKWorkload ranks the best k elements by repeated supervised max-finding.
type topKWorkload struct{ k int }

// TopKWorkload returns the top-k ranking workload: k rounds of the two-phase
// algorithm, each extracting and removing the current maximum (wrapping
// core.TopK), with memoized oracles making later rounds substantially
// cheaper than k independent max-finds. Each rank carries its own rung and
// guarantee in Result.Ranked; checkpoints snapshot at rank boundaries, so a
// resumed run replays only the in-flight round (completed ranks are restored
// from the snapshot, and the in-flight round's comparisons are free memo
// hits). Under Config.Degrade each round is independently supervised by a
// fresh controller; a round that falls to best-so-far stops the run rather
// than poison later ranks with an unvouched removal.
func TopKWorkload(k int) Workload { return &topKWorkload{k: k} }

// Kind implements Workload.
func (w *topKWorkload) Kind() string { return TopKKind }

func (w *topKWorkload) validate(cfg *Config, nItems int) error {
	if w.k < 1 || w.k > nItems {
		return fmt.Errorf("crowdmax: TopKWorkload requires 1 ≤ k ≤ n, got k=%d n=%d", w.k, nItems)
	}
	return nil
}

// topkState is the workload's checkpointable progress: the completed ranks.
type topkState struct {
	mu    sync.Mutex
	k     int
	ranks []RankedResult
}

func (st *topkState) append(r RankedResult) {
	st.mu.Lock()
	st.ranks = append(st.ranks, r)
	st.mu.Unlock()
}

func (st *topkState) snapshotRanks() []RankedResult {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]RankedResult(nil), st.ranks...)
}

// encode renders the rank log as the checkpoint workload blob.
func (st *topkState) encode() []byte {
	st.mu.Lock()
	defer st.mu.Unlock()
	var b checkpoint.Builder
	b.U64(1) // blob revision
	b.I64(int64(st.k))
	b.I64(int64(len(st.ranks)))
	for _, r := range st.ranks {
		b.I64(int64(r.Item.ID))
		b.Str(r.Rung)
		b.Str(string(r.Guarantee))
	}
	return b.Bytes()
}

// topkRankRecord is one decoded rank: the winner by ID (the Item is
// reconstructed from the resume input, which the items fingerprint pins).
type topkRankRecord struct {
	id   int
	rung string
	g    Guarantee
}

func decodeTopKBlob(blob []byte) (k int, ranks []topkRankRecord, err error) {
	r := checkpoint.NewReader(blob)
	if rev := r.U64(); r.Err() == nil && rev != 1 {
		return 0, nil, fmt.Errorf("%w: unknown top-k state revision %d", checkpoint.ErrCorrupt, rev)
	}
	k = int(r.I64())
	n := r.Count(8)
	for i := int64(0); i < n; i++ {
		ranks = append(ranks, topkRankRecord{
			id:   int(r.I64()),
			rung: r.Str(),
			g:    Guarantee(r.Str()),
		})
	}
	if err := r.Done(); err != nil {
		return 0, nil, err
	}
	if k < 1 || len(ranks) > k {
		return 0, nil, fmt.Errorf("%w: top-k state claims %d ranks of k=%d", checkpoint.ErrCorrupt, len(ranks), k)
	}
	return k, ranks, nil
}

func (w *topKWorkload) prepare(env *runEnv) error {
	st := &topkState{k: w.k}
	if env.resume != nil {
		k, recs, err := decodeTopKBlob(env.resume.Workload)
		if err != nil {
			return err
		}
		if k != w.k {
			return fmt.Errorf("crowdmax: checkpoint was taken with k=%d, workload has k=%d", k, w.k)
		}
		byID := make(map[int]Item, len(env.items))
		for _, it := range env.items {
			byID[it.ID] = it
		}
		for _, rec := range recs {
			it, ok := byID[rec.id]
			if !ok {
				return fmt.Errorf("crowdmax: checkpointed rank winner %d is not in the given items", rec.id)
			}
			st.ranks = append(st.ranks, RankedResult{Item: it, Rung: rec.rung, Guarantee: rec.g})
		}
	}
	env.wl = st
	env.hooks.setBlob(st.encode)
	return nil
}

func (w *topKWorkload) run(ctx context.Context, env *runEnv) (Result, error) {
	s := env.s
	st := env.wl.(*topkState)
	ranked := st.snapshotRanks()
	done := make(map[int]bool, len(ranked))
	for _, r := range ranked {
		done[r.Item.ID] = true
	}
	remaining := make([]Item, 0, len(env.items))
	for _, it := range env.items {
		if !done[it.ID] {
			remaining = append(remaining, it)
		}
	}

	var decisions []DegradeDecision
	var runErr error
	record := func(r RankedResult) {
		ranked = append(ranked, r)
		st.append(r)
		kept := remaining[:0]
		for _, it := range remaining {
			if it.ID != r.Item.ID {
				kept = append(kept, it)
			}
		}
		remaining = kept
		// The rank boundary snapshot makes the completed rank durable
		// before the next round spends anything on it.
		if env.ck != nil {
			env.ck.boundary("rank", remaining)
		}
		if s.cfg.OnPhase != nil {
			s.cfg.OnPhase("rank", remaining)
		}
	}

rounds:
	for round := len(ranked); round < st.k; round++ {
		natural, naturalG := degrade.NaturalRung(int(s.cfg.Phase2))
		if s.cfg.Degrade != nil && len(remaining) > 1 {
			// Each round gets a fresh controller: failure counts and ladder
			// positions from one rank say nothing about the next.
			ctl, err := degrade.NewController(degrade.Config{
				Ladder:      s.cfg.Degrade.Ladder,
				MaxAttempts: s.cfg.Degrade.MaxAttempts,
				Seed:        env.r.ChildN("topk-ctl", round).Seed(),
				CmpLatency:  s.cfg.Degrade.CmpLatency,
			})
			if err != nil {
				runErr = err
				break
			}
			env.hooks.setController(ctl)
			opt := s.degradeOptions(ctx, env, core.RandomizedOptions{R: env.r.ChildN("topk-phase2", round)})
			out, err := degrade.Run(ctx, remaining, env.no, env.eo, ctl, opt)
			decisions = append(decisions, out.Decisions...)
			if err != nil {
				runErr = fmt.Errorf("round %d: %w", round+1, err)
				break
			}
			if out.Rung.Guarantee == GuaranteeNone {
				// The round fell to the terminal rung: its leader carries no
				// bound, and removing an unvouched winner would poison every
				// later rank. Record what there is and stop.
				if out.Best != (Item{}) {
					record(RankedResult{Item: out.Best, Rung: out.Rung.Name, Guarantee: GuaranteeNone})
				}
				break rounds
			}
			record(RankedResult{Item: out.Best, Rung: out.Rung.Name, Guarantee: out.Rung.Guarantee})
			continue
		}
		// Undegraded (or single-element) round: wrap core.TopK for its
		// validation, single-survivor shortcut, and truncation reporting.
		// Per-round child streams keep a resumed run's randomized phase 2 on
		// the same draws as an uninterrupted one even though completed
		// rounds are skipped.
		out, err := core.TopK(ctx, remaining, env.no, env.eo, core.TopKOptions{
			K:           1,
			U:           s.cfg.Un,
			Phase2:      s.cfg.Phase2,
			TrackLosses: s.cfg.TrackLosses,
			Randomized:  core.RandomizedOptions{R: env.r.ChildN("topk-phase2", round)},
			Scheduler:   s.cfg.Scheduler,
		})
		if err != nil {
			// Re-wrap with the global round number (core.TopK saw round 1 of
			// its one-round run).
			var re *core.RoundError
			if errors.As(err, &re) {
				err = re.Err
			}
			runErr = fmt.Errorf("round %d: %w", round+1, err)
			break
		}
		record(RankedResult{Item: out[0], Rung: natural, Guarantee: naturalG})
	}

	if runErr == nil && env.ck != nil {
		runErr = env.ck.Err()
	}
	s.ledger.Add(env.runLedger)
	res := Result{
		Ranked:            ranked,
		NaiveComparisons:  env.runLedger.Naive(),
		ExpertComparisons: env.runLedger.Expert(),
		Cost:              env.runLedger.Cost(s.cfg.Prices),
		Decisions:         decisions,
	}
	if len(ranked) > 0 {
		res.Best = ranked[0].Item
	}
	if runErr == nil && len(ranked) > 0 {
		// The overall label is the weakest rank's: a ranking is only as
		// trustworthy as its least-vouched entry.
		weakest := ranked[0]
		for _, r := range ranked[1:] {
			if r.Guarantee.Strength() < weakest.Guarantee.Strength() {
				weakest = r
			}
		}
		res.Rung, res.Guarantee = weakest.Rung, weakest.Guarantee
		res.Phase1Complete = len(ranked) == st.k
		if s.cfg.OnPhase != nil {
			s.cfg.OnPhase("done", remaining)
		}
	} else {
		res.Rung, res.Guarantee = "best-so-far", GuaranteeNone
	}
	return res, runErr
}

// ----------------------------------------------------------------------------
// crowd scoring

// ScoreAggregation selects how a score run combines each element's votes.
type ScoreAggregation = core.Aggregation

// Score aggregation choices.
const (
	// TrimmedMeanAggregation drops each element's top and bottom quarter of
	// votes and averages the rest (the default).
	TrimmedMeanAggregation = core.AggTrimmedMean
	// MedianAggregation takes each element's median vote — the
	// majority-style aggregate.
	MedianAggregation = core.AggMedian
)

// ItemScore pairs an element with its aggregated crowd score.
type ItemScore = core.ItemScore

// ScoreConfig configures the crowd-scoring workload.
type ScoreConfig struct {
	// Votes is the number of independent cardinal votes per element in the
	// scoring phase; 0 defaults to 3.
	Votes int
	// Aggregation combines each element's votes; the zero value is the
	// trimmed mean.
	Aggregation ScoreAggregation
	// Shortlist overrides the number of top-scored elements handed to the
	// expert phase; 0 derives 2·un − 1 from the session's Config.Un.
	Shortlist int
}

// scoreWorkload is the crowd-scoring workload (Nordio et al.).
type scoreWorkload struct{ cfg ScoreConfig }

// ScoreWorkload returns the crowd-scoring workload: naïve workers score
// every element with Votes cardinal value queries each, the votes are
// aggregated robustly, and experts extract the best element from the
// top-scored shortlist (core.Score). The session needs a Config.Valuer (or a
// NaiveBackend that answers value queries). A clean run reports rung
// "score-expert" with the 2δe@subset guarantee — experts were exact, but
// over a score-derived shortlist. Under Config.Degrade, a run whose expert
// phase fails recoverably after scoring completed falls back to the
// aggregated-score leader under rung "score-naive" (δn) instead of failing.
func ScoreWorkload(cfg ScoreConfig) Workload { return &scoreWorkload{cfg: cfg} }

// Kind implements Workload.
func (w *scoreWorkload) Kind() string { return ScoreKind }

func (w *scoreWorkload) validate(cfg *Config, nItems int) error {
	if w.cfg.Votes < 0 {
		return fmt.Errorf("crowdmax: ScoreConfig.Votes must be ≥ 0, got %d", w.cfg.Votes)
	}
	if w.cfg.Shortlist < 0 {
		return fmt.Errorf("crowdmax: ScoreConfig.Shortlist must be ≥ 0, got %d", w.cfg.Shortlist)
	}
	switch w.cfg.Aggregation {
	case TrimmedMeanAggregation, MedianAggregation:
	default:
		return fmt.Errorf("crowdmax: unknown ScoreConfig.Aggregation %d", int(w.cfg.Aggregation))
	}
	if cfg.Valuer == nil && cfg.NaiveBackend == nil {
		return errors.New("crowdmax: ScoreWorkload requires Config.Valuer or a NaiveBackend that answers value queries")
	}
	return nil
}

// encodeBlob fingerprints the score configuration into the checkpoint blob
// so Resume can reconstruct the workload and refuse a mismatched one.
func (w *scoreWorkload) encodeBlob() []byte {
	var b checkpoint.Builder
	b.U64(1) // blob revision
	b.I64(int64(w.cfg.Votes))
	b.I64(int64(w.cfg.Aggregation))
	b.I64(int64(w.cfg.Shortlist))
	return b.Bytes()
}

func decodeScoreBlob(blob []byte) (ScoreConfig, error) {
	r := checkpoint.NewReader(blob)
	if rev := r.U64(); r.Err() == nil && rev != 1 {
		return ScoreConfig{}, fmt.Errorf("%w: unknown score state revision %d", checkpoint.ErrCorrupt, rev)
	}
	cfg := ScoreConfig{
		Votes:       int(r.I64()),
		Aggregation: ScoreAggregation(r.I64()),
		Shortlist:   int(r.I64()),
	}
	if err := r.Done(); err != nil {
		return ScoreConfig{}, err
	}
	return cfg, nil
}

func (w *scoreWorkload) prepare(env *runEnv) error {
	if env.resume != nil {
		got, err := decodeScoreBlob(env.resume.Workload)
		if err != nil {
			return err
		}
		if got != w.cfg {
			return fmt.Errorf("crowdmax: checkpoint was taken with score config %+v, workload has %+v", got, w.cfg)
		}
	}
	env.hooks.setBlob(w.encodeBlob)
	return nil
}

func (w *scoreWorkload) run(ctx context.Context, env *runEnv) (Result, error) {
	s := env.s
	opt := core.ScoreOptions{
		Votes:       w.cfg.Votes,
		Aggregation: w.cfg.Aggregation,
		U:           s.cfg.Un,
		Shortlist:   w.cfg.Shortlist,
		Phase2:      s.cfg.Phase2,
		Randomized:  core.RandomizedOptions{R: env.r.Child("score-phase2")},
		Scheduler:   s.cfg.Scheduler,
	}
	opt.OnPhase = s.phaseHook(env.ck)
	res, serr := core.Score(ctx, env.items, env.no, env.eo, opt)
	var ckErr error
	if env.ck != nil {
		ckErr = env.ck.Err()
	}
	err := serr
	if err == nil {
		err = ckErr
	}
	s.ledger.Add(env.runLedger)
	out := Result{
		Best:              res.Best,
		Candidates:        res.Shortlist,
		Scores:            res.Scores,
		NaiveComparisons:  env.runLedger.Naive(),
		ExpertComparisons: env.runLedger.Expert(),
		Cost:              env.runLedger.Cost(s.cfg.Prices),
		Phase1Complete:    res.ScoresComplete,
	}
	switch {
	case err == nil:
		out.Rung, out.Guarantee = "score-expert", Guarantee2DeltaESubset
	case s.cfg.Degrade != nil && res.ScoresComplete && ckErr == nil && recoverableScoreErr(err):
		// Graceful degradation: scoring completed, only the expert
		// extraction failed — serve the aggregated-score leader under the
		// honest naive-strength label instead of failing the run.
		out.Best = res.Scores[0].Item
		out.Rung, out.Guarantee = "score-naive", GuaranteeDeltaN
		err = nil
	default:
		out.Rung, out.Guarantee = "best-so-far", GuaranteeNone
	}
	return out, err
}

// recoverableScoreErr reports whether a score run's expert-phase failure may
// be absorbed by the score-naive fallback. Cancellation, deadlines, and
// injected crashes stay fatal — crash recovery is Resume's job.
func recoverableScoreErr(err error) bool {
	return !errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, ErrInjectedCrash)
}

// valueAnswers copies a value memo into the checkpoint's sorted form.
func valueAnswers(vm *tournament.ValueMemo) []checkpoint.ValueAnswer {
	if vm == nil {
		return nil
	}
	entries := vm.Entries()
	if len(entries) == 0 {
		return nil
	}
	out := make([]checkpoint.ValueAnswer, len(entries))
	for i, e := range entries {
		out[i] = checkpoint.ValueAnswer{ID: e.ID, Rep: e.Rep, Value: e.Value}
	}
	return out
}
