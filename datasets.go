package crowdmax

import (
	"io"

	"crowdmax/internal/dataset"
	"crowdmax/internal/platform"
	"crowdmax/internal/worker"
)

// This file re-exports the dataset generators and the crowdsourcing
// platform simulator, so applications can reproduce the paper's scenarios
// through the public API alone.

// UniformDataset returns n items with values uniform in [lo, hi) — the
// random-instance generator of the paper's simulations.
func UniformDataset(n int, lo, hi float64, r *Rand) *Set {
	return dataset.Uniform(n, lo, hi, r)
}

// Calibrated is a generated instance with thresholds δn, δe calibrated to
// exact un and ue targets.
type Calibrated = dataset.Calibrated

// CalibratedUniform generates a uniform instance and calibrates δn, δe so
// that exactly un (resp. ue) elements are indistinguishable from the
// maximum for naïve workers (resp. experts).
func CalibratedUniform(n, un, ue int, r *Rand) (Calibrated, error) {
	return dataset.UniformCalibrated(n, un, ue, r)
}

// Car describes one car of the synthetic CARS catalogue.
type Car = dataset.Car

// CarsConfig tunes the synthetic CARS catalogue; the zero value reproduces
// the paper's envelope (110 cars, $14K–$130K, ≥$500 apart, right-skewed).
type CarsConfig = dataset.CarsConfig

// CarsDataset generates the synthetic stand-in for the paper's CARS data.
func CarsDataset(cfg CarsConfig, r *Rand) (*Set, []Car, error) {
	return dataset.Cars(cfg, r)
}

// DotsDataset returns the synthetic DOTS instance: n images represented by
// their dot counts (values are negated counts, so max-finding finds the
// image with the fewest dots, as in the paper's task).
func DotsDataset(n int) *Set { return dataset.Dots(n) }

// DotsGold returns the paper's DOTS golden set for platform quality
// control.
func DotsGold() []Item { return dataset.DotsGold() }

// DotCount recovers the dot count of a DOTS item.
func DotCount(it Item) int { return dataset.DotCount(it) }

// SearchQuery names a Section 5.3 evaluation query.
type SearchQuery = dataset.SearchQuery

// The paper's two evaluation queries.
const (
	QueryAsymmetricTSP = dataset.QueryAsymmetricTSP
	QuerySteinerTree   = dataset.QuerySteinerTree
)

// SearchDataset generates the synthetic result list for a query: n results
// with decaying relevance and one clear best separated by bestGap.
func SearchDataset(query SearchQuery, n int, bestGap float64, r *Rand) (*Set, error) {
	return dataset.SearchResults(query, n, bestGap, r)
}

// SampleDataset draws a uniform subsample of k items as its own Set.
func SampleDataset(s *Set, k int, r *Rand) (*Set, error) {
	return dataset.SampleSet(s, k, r)
}

// ReadCSV loads a Set from "label,value" CSV rows (header optional), the
// entry point for real datasets.
func ReadCSV(r io.Reader) (*Set, error) { return dataset.ReadCSV(r) }

// WriteCSV writes a Set as "label,value" CSV rows, the inverse of ReadCSV.
func WriteCSV(w io.Writer, s *Set) error { return dataset.WriteCSV(w, s) }

// Platform simulates a crowdsourcing platform: a worker pool, batched
// comparison jobs billed in logical steps, gold-question quality control,
// and majority-vote aggregation.
type Platform = platform.Platform

// PlatformConfig tunes a Platform; zero values select the paper's
// CrowdFlower setup (15% gold queries, 70% accuracy floor).
type PlatformConfig = platform.Config

// PlatformPair is one comparison task submitted to a Platform.
type PlatformPair = platform.Pair

// NewPlatform creates a Platform.
func NewPlatform(cfg PlatformConfig) (*Platform, error) { return platform.New(cfg) }

// WorkerWorld holds per-pair latent question difficulties under a Regime
// and hands out workers that share them — the empirical model behind the
// paper's Figure 2.
type WorkerWorld = worker.World

// Regime assigns latent per-pair correctness probabilities; see
// WisdomRegime and PlateauRegime.
type Regime = worker.Regime

// WisdomRegime models wisdom-of-crowds tasks (DOTS): majority voting
// drives accuracy to 1.
type WisdomRegime = worker.WisdomRegime

// PlateauRegime models expertise-barrier tasks (CARS): accuracy on hard
// pairs plateaus regardless of the number of voters.
type PlateauRegime = worker.PlateauRegime

// NewWorkerWorld creates a WorkerWorld for the given regime.
func NewWorkerWorld(regime Regime, r *Rand) *WorkerWorld { return worker.NewWorld(regime, r) }

// Spammer is a worker answering uniformly at random; the platform's gold
// questions exist to ban these.
type Spammer = worker.Spammer
