package crowdmax

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"crowdmax/internal/checkpoint"
	"crowdmax/internal/dataset"
)

// resultsEqual compares the engine-visible outcome of two runs: answer,
// paid totals, labels, candidate sets, ranks, and scores.
func resultsEqual(t *testing.T, got, want Result) {
	t.Helper()
	if got.Best.ID != want.Best.ID {
		t.Fatalf("best = %d, want %d", got.Best.ID, want.Best.ID)
	}
	if got.NaiveComparisons != want.NaiveComparisons ||
		got.ExpertComparisons != want.ExpertComparisons ||
		got.Cost != want.Cost {
		t.Fatalf("totals (%d naive, %d expert, cost %g) differ from (%d, %d, %g)",
			got.NaiveComparisons, got.ExpertComparisons, got.Cost,
			want.NaiveComparisons, want.ExpertComparisons, want.Cost)
	}
	if got.Rung != want.Rung || got.Guarantee != want.Guarantee {
		t.Fatalf("label %s/%s, want %s/%s", got.Rung, got.Guarantee, want.Rung, want.Guarantee)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("candidate set size %d, want %d", len(got.Candidates), len(want.Candidates))
	}
	for i := range got.Candidates {
		if got.Candidates[i].ID != want.Candidates[i].ID {
			t.Fatalf("candidate %d: %d, want %d", i, got.Candidates[i].ID, want.Candidates[i].ID)
		}
	}
	if len(got.Ranked) != len(want.Ranked) {
		t.Fatalf("%d ranks, want %d", len(got.Ranked), len(want.Ranked))
	}
	for i := range got.Ranked {
		g, w := got.Ranked[i], want.Ranked[i]
		if g.Item.ID != w.Item.ID || g.Rung != w.Rung || g.Guarantee != w.Guarantee {
			t.Fatalf("rank %d: %d/%s/%s, want %d/%s/%s",
				i+1, g.Item.ID, g.Rung, g.Guarantee, w.Item.ID, w.Rung, w.Guarantee)
		}
	}
	if len(got.Scores) != len(want.Scores) {
		t.Fatalf("%d scores, want %d", len(got.Scores), len(want.Scores))
	}
	for i := range got.Scores {
		if got.Scores[i] != want.Scores[i] {
			t.Fatalf("score %d: %+v, want %+v", i, got.Scores[i], want.Scores[i])
		}
	}
}

// TestRunMaxFindEquivalent is the tentpole's core promise: Session.Run with
// the MaxFind workload is the same computation as FindMaxContext — same
// answer, same paid counts, same cost, same labels — across seeds,
// schedulers, phase-2 algorithms, budgets, and mid-run crashes.
func TestRunMaxFindEquivalent(t *testing.T) {
	cal, err := dataset.UniformCalibrated(150, 5, 2, NewRand(21))
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()
	for _, seed := range []uint64{3, 77} {
		for _, sched := range []SchedulerKind{LockstepScheduler, DAGScheduler} {
			for _, algo := range []Phase2Algorithm{TwoMaxFindPhase2, RandomizedPhase2, AllPlayAllPhase2} {
				for _, variant := range []string{"plain", "budget", "crash"} {
					name := fmt.Sprintf("seed=%d/sched=%d/algo=%d/%s", seed, sched, algo, variant)
					t.Run(name, func(t *testing.T) {
						mutate := func(c *Config) {
							c.Scheduler = sched
							c.Phase2 = algo
							switch variant {
							case "budget":
								c.Budget = BudgetLimits{MaxNaive: 600, MaxExpert: 10_000}
							case "crash":
								c.Chaos = &ChaosPlan{CrashAfter: 120}
							}
						}
						a := statelessSession(t, cal, seed, mutate)
						b := statelessSession(t, cal, seed, mutate)
						want, errA := a.FindMaxContext(context.Background(), items)
						got, errB := b.Run(context.Background(), MaxFind(), items)
						if (errA == nil) != (errB == nil) || (errA != nil && errA.Error() != errB.Error()) {
							t.Fatalf("FindMax err %v, Run err %v", errA, errB)
						}
						resultsEqual(t, got, want)
					})
				}
			}
		}
	}
}

// TestTopKWorkloadSession runs a top-k session end to end: k ordered ranks,
// honest per-rank labels, and a ranking whose head matches max-find.
func TestTopKWorkloadSession(t *testing.T) {
	cal, err := dataset.UniformCalibrated(120, 5, 2, NewRand(22))
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()
	const k = 4
	s := statelessSession(t, cal, 9, nil)
	res, err := s.Run(context.Background(), TopKWorkload(k), items)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != k {
		t.Fatalf("got %d ranks, want %d", len(res.Ranked), k)
	}
	if res.Best.ID != res.Ranked[0].Item.ID {
		t.Fatalf("Best %d != rank 1 %d", res.Best.ID, res.Ranked[0].Item.ID)
	}
	if !res.Phase1Complete {
		t.Fatal("clean top-k run reports Phase1Complete=false")
	}
	seen := map[int]bool{}
	for i, r := range res.Ranked {
		if seen[r.Item.ID] {
			t.Fatalf("rank %d repeats element %d", i+1, r.Item.ID)
		}
		seen[r.Item.ID] = true
		strongest, ok := StrongestGuaranteeFor(r.Rung)
		if !ok {
			t.Fatalf("rank %d names unknown rung %q", i+1, r.Rung)
		}
		if r.Guarantee.Strength() > strongest.Strength() {
			t.Fatalf("rank %d label %q stronger than rung %q allows", i+1, r.Guarantee, r.Rung)
		}
	}
	// Rank 1 agrees with a plain max-find over the same configuration.
	mf := statelessSession(t, cal, 9, nil)
	mres, err := mf.FindMax(items)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Best.ID != res.Ranked[0].Item.ID {
		t.Fatalf("top-k rank 1 = %d, max-find best = %d", res.Ranked[0].Item.ID, mres.Best.ID)
	}
	// Each rank's element is within 2δe of the best among its round's
	// remaining elements — spot-check rank 1 against the global max.
	if d := Distance(cal.Set.Max(), res.Ranked[0].Item); d > 2*cal.DeltaE {
		t.Fatalf("rank 1 is %g from the max, want ≤ 2δe = %g", d, 2*cal.DeltaE)
	}
}

// TestTopKCrashResumeBitIdentical extends the resume invariant to ranked
// runs: a top-k job crashed at several points and resumed must reproduce the
// uninterrupted ranking, totals, and labels exactly, and the resumed run
// must only execute rounds the snapshot had not completed.
func TestTopKCrashResumeBitIdentical(t *testing.T) {
	cal, err := dataset.UniformCalibrated(150, 6, 2, NewRand(23))
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()
	const seed, k = 55, 3

	baseDir := t.TempDir()
	base := statelessSession(t, cal, seed, func(c *Config) {
		c.Checkpoint = CheckpointConfig{Path: filepath.Join(baseDir, "base.ck"), Every: 64}
	})
	want, err := base.Run(context.Background(), TopKWorkload(k), items)
	if err != nil {
		t.Fatal(err)
	}

	// Crash points span the run: early phase 1, mid-run, and late (the
	// baseline's totals bound the paid stream, so 9/10 of it is still
	// before the final comparison).
	total := want.NaiveComparisons + want.ExpertComparisons
	for _, crashAfter := range []int64{40, total / 4, total / 2, total * 9 / 10} {
		t.Run(fmt.Sprintf("crash-after-%d", crashAfter), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ck")
			crashed := statelessSession(t, cal, seed, func(c *Config) {
				c.Checkpoint = CheckpointConfig{Path: path, Every: 64}
				c.Chaos = &ChaosPlan{CrashAfter: crashAfter}
			})
			_, err := crashed.Run(context.Background(), TopKWorkload(k), items)
			if !errors.Is(err, ErrInjectedCrash) {
				t.Fatalf("crashed run err = %v, want ErrInjectedCrash", err)
			}

			// The snapshot records the completed ranks; the resumed run must
			// re-execute only the rounds after them.
			st, err := checkpoint.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Kind != TopKKind {
				t.Fatalf("snapshot kind %q, want %q", st.Kind, TopKKind)
			}
			_, recs, err := decodeTopKBlob(st.Workload)
			if err != nil {
				t.Fatal(err)
			}
			var rankBoundaries int
			resumed := statelessSession(t, cal, seed, func(c *Config) {
				c.Checkpoint = CheckpointConfig{Path: path, Every: 64}
				c.OnPhase = func(phase string, _ []Item) {
					if phase == "rank" {
						rankBoundaries++
					}
				}
			})
			got, err := resumed.Resume(context.Background(), path, items)
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			resultsEqual(t, got, want)
			if wantRounds := k - len(recs); rankBoundaries != wantRounds {
				t.Fatalf("resumed run crossed %d rank boundaries, want %d (snapshot had %d of %d ranks)",
					rankBoundaries, wantRounds, len(recs), k)
			}
			for i, rec := range recs {
				if rec.id != want.Ranked[i].Item.ID {
					t.Fatalf("snapshot rank %d = %d, uninterrupted = %d", i+1, rec.id, want.Ranked[i].Item.ID)
				}
			}
		})
	}
}

// TestScoreWorkloadSession runs crowd scoring end to end with exact votes:
// the score leader is the true maximum, every element is scored, and the
// result carries the score-expert label.
func TestScoreWorkloadSession(t *testing.T) {
	cal, err := dataset.UniformCalibrated(100, 5, 2, NewRand(24))
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()
	s := statelessSession(t, cal, 11, func(c *Config) {
		c.Valuer = TruthValuer
	})
	res, err := s.Run(context.Background(), ScoreWorkload(ScoreConfig{Votes: 3}), items)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.ID != cal.Set.Max().ID {
		t.Fatalf("exact-vote score run returned %d, true max is %d", res.Best.ID, cal.Set.Max().ID)
	}
	if res.Rung != "score-expert" || res.Guarantee != Guarantee2DeltaESubset {
		t.Fatalf("labeled %s/%s, want score-expert/%s", res.Rung, res.Guarantee, Guarantee2DeltaESubset)
	}
	if len(res.Scores) != len(items) {
		t.Fatalf("%d scores for %d elements", len(res.Scores), len(items))
	}
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i-1].Score < res.Scores[i].Score {
			t.Fatalf("scores not sorted descending at %d", i)
		}
	}
	if res.NaiveComparisons < int64(3*len(items)) {
		t.Fatalf("paid %d naive queries, want ≥ %d (n·votes)", res.NaiveComparisons, 3*len(items))
	}
	if !res.Phase1Complete {
		t.Fatal("clean score run reports Phase1Complete=false")
	}
}

// TestScoreCrashResumeBitIdentical extends the resume invariant to value
// queries: a score run crashed mid-flight resumes through the value memo to
// the identical answer, scores, and totals.
func TestScoreCrashResumeBitIdentical(t *testing.T) {
	cal, err := dataset.UniformCalibrated(120, 5, 2, NewRand(25))
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()
	const seed = 66
	valuer := NoisyValuer{Sigma: cal.DeltaN, Seed: seed + 2}

	base := statelessSession(t, cal, seed, func(c *Config) {
		c.Valuer = valuer
		c.Checkpoint = CheckpointConfig{Path: filepath.Join(t.TempDir(), "base.ck"), Every: 32}
	})
	want, err := base.Run(context.Background(), ScoreWorkload(ScoreConfig{Votes: 5}), items)
	if err != nil {
		t.Fatal(err)
	}

	total := want.NaiveComparisons + want.ExpertComparisons
	for _, crashAfter := range []int64{33, total / 2, total * 9 / 10} {
		t.Run(fmt.Sprintf("crash-after-%d", crashAfter), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ck")
			crashed := statelessSession(t, cal, seed, func(c *Config) {
				c.Valuer = valuer
				c.Checkpoint = CheckpointConfig{Path: path, Every: 32}
				c.Chaos = &ChaosPlan{CrashAfter: crashAfter}
			})
			_, err := crashed.Run(context.Background(), ScoreWorkload(ScoreConfig{Votes: 5}), items)
			if !errors.Is(err, ErrInjectedCrash) {
				t.Fatalf("crashed run err = %v, want ErrInjectedCrash", err)
			}
			st, err := checkpoint.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Kind != ScoreKind {
				t.Fatalf("snapshot kind %q, want %q", st.Kind, ScoreKind)
			}
			resumed := statelessSession(t, cal, seed, func(c *Config) {
				c.Valuer = valuer
				c.Checkpoint = CheckpointConfig{Path: path, Every: 32}
			})
			got, err := resumed.Resume(context.Background(), path, items)
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			resultsEqual(t, got, want)
		})
	}
}

// failingBackend refuses every request permanently.
type failingBackend struct{}

func (failingBackend) Answer(context.Context, BackendRequest) (BackendAnswer, error) {
	return BackendAnswer{}, fmt.Errorf("expert pool offline: %w", ErrPermanentBackend)
}

// TestScoreNaiveFallback: with graceful degradation on, a score run whose
// expert phase fails after scoring completed serves the aggregated-score
// leader under the honest score-naive/δn label instead of failing.
func TestScoreNaiveFallback(t *testing.T) {
	cal, err := dataset.UniformCalibrated(80, 4, 2, NewRand(26))
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()
	s := statelessSession(t, cal, 13, func(c *Config) {
		c.Valuer = TruthValuer
		c.ExpertBackend = failingBackend{}
		c.Degrade = &DegradeConfig{}
	})
	res, err := s.Run(context.Background(), ScoreWorkload(ScoreConfig{Votes: 3}), items)
	if err != nil {
		t.Fatalf("degraded score run failed: %v", err)
	}
	if res.Rung != "score-naive" || res.Guarantee != GuaranteeDeltaN {
		t.Fatalf("labeled %s/%s, want score-naive/%s", res.Rung, res.Guarantee, GuaranteeDeltaN)
	}
	if res.Best.ID != cal.Set.Max().ID {
		t.Fatalf("exact-vote fallback returned %d, true max is %d", res.Best.ID, cal.Set.Max().ID)
	}
	// Without Degrade the same failure is fatal.
	hard := statelessSession(t, cal, 13, func(c *Config) {
		c.Valuer = TruthValuer
		c.ExpertBackend = failingBackend{}
	})
	hres, err := hard.Run(context.Background(), ScoreWorkload(ScoreConfig{Votes: 3}), items)
	if err == nil {
		t.Fatal("undegraded score run with a dead expert backend succeeded")
	}
	if hres.Rung != "best-so-far" || hres.Guarantee != GuaranteeNone {
		t.Fatalf("failed run labeled %s/%s, want best-so-far/none", hres.Rung, hres.Guarantee)
	}
}

// TestWorkloadValidation covers the refuse-early paths: bad k, score without
// a value source, nil workload, and kind-mismatched resume.
func TestWorkloadValidation(t *testing.T) {
	cal, err := dataset.UniformCalibrated(60, 4, 2, NewRand(27))
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()
	s := statelessSession(t, cal, 14, nil)
	ctx := context.Background()

	if _, err := s.Run(ctx, TopKWorkload(0), items); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := s.Run(ctx, TopKWorkload(len(items)+1), items); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := s.Run(ctx, ScoreWorkload(ScoreConfig{}), items); err == nil {
		t.Fatal("score without Valuer or NaiveBackend accepted")
	}
	if _, err := s.Run(ctx, nil, items); err == nil {
		t.Fatal("nil workload accepted")
	}

	// A top-k checkpoint refuses to resume as max-find (and vice versa).
	path := filepath.Join(t.TempDir(), "run.ck")
	crashed := statelessSession(t, cal, 15, func(c *Config) {
		c.Checkpoint = CheckpointConfig{Path: path, Every: 16}
		c.Chaos = &ChaosPlan{CrashAfter: 30}
	})
	if _, err := crashed.Run(ctx, TopKWorkload(2), items); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("crash setup err = %v", err)
	}
	wrong := statelessSession(t, cal, 15, func(c *Config) {
		c.Checkpoint = CheckpointConfig{Path: path, Every: 16}
	})
	if _, err := wrong.ResumeWorkload(ctx, MaxFind(), path, items); err == nil {
		t.Fatal("top-k checkpoint resumed as max-find")
	}
	// A mismatched k is refused even though the kind matches.
	if _, err := wrong.ResumeWorkload(ctx, TopKWorkload(3), path, items); err == nil {
		t.Fatal("top-k checkpoint resumed with different k")
	}
	// Resume proper dispatches on the recorded kind and succeeds.
	if _, err := wrong.Resume(ctx, path, items); err != nil {
		t.Fatalf("kind-dispatched Resume: %v", err)
	}
}

// TestTopKReusesMemos quantifies the engine's memo reuse: ranking k elements
// in one session is substantially cheaper than k independent max-finds,
// because later rounds replay phase-1 comparisons from the memo tables.
func TestTopKReusesMemos(t *testing.T) {
	cal, err := dataset.UniformCalibrated(150, 6, 2, NewRand(28))
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()
	const k = 4

	engine := statelessSession(t, cal, 31, nil)
	eres, err := engine.Run(context.Background(), TopKWorkload(k), items)
	if err != nil {
		t.Fatal(err)
	}

	var independent int64
	remaining := items
	for round := 0; round < k; round++ {
		s := statelessSession(t, cal, 31, nil)
		r, err := s.FindMax(remaining)
		if err != nil {
			t.Fatal(err)
		}
		independent += r.NaiveComparisons
		kept := make([]Item, 0, len(remaining)-1)
		for _, it := range remaining {
			if it.ID != r.Best.ID {
				kept = append(kept, it)
			}
		}
		remaining = kept
	}
	if eres.NaiveComparisons >= independent {
		t.Fatalf("engine top-k paid %d naive comparisons, %d independent max-finds paid %d — no memo reuse",
			eres.NaiveComparisons, k, independent)
	}
	t.Logf("top-k via engine: %d naive; %d independent max-finds: %d naive (%.1f%% saved)",
		eres.NaiveComparisons, k, independent,
		100*(1-float64(eres.NaiveComparisons)/float64(independent)))
}
