// Command soak hammers the degrade-enabled Session with time-varying chaos
// schedules and crash/resume cycles, and asserts the robustness invariants
// the graceful-degradation controller promises:
//
//   - a supervised run never panics and never returns an error for
//     recoverable faults — it degrades and reports the achieved guarantee;
//   - the guarantee label is never stronger than the rung that produced the
//     answer, and δn-or-stronger labels only appear after a completed filter;
//   - a run killed by the crash injector and resumed from its checkpoint
//     lands on the same rung with the same answer and the same paid counts,
//     bit-identically to an uninterrupted run of the same seed.
//
// Each trial runs three legs sharing one derived seed: an uninterrupted
// reference run, the same run killed at -crash-at paid comparisons, and a
// resume from the crashed run's snapshot. With -dist it prints the achieved
// guarantee distribution per schedule as a markdown table (the numbers in
// EXPERIMENTS.md come from this mode).
//
// Example:
//
//	soak -trials 16 -n 400 -seed 1
//	soak -trials 50 -n 400 -dist -plans "expert-outage:1.0@800+"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"

	"crowdmax"
	"crowdmax/internal/dataset"
)

var (
	trials  = flag.Int("trials", 16, "trials per schedule")
	nItems  = flag.Int("n", 400, "instance size per trial")
	unFlag  = flag.Int("un", 8, "target un(n) for the generated instances")
	ueFlag  = flag.Int("ue", 3, "target ue(n) for the generated instances")
	seed    = flag.Uint64("seed", 1, "base seed; every trial derives its own from it")
	plans   = flag.String("plans", strings.Join(defaultSchedules, ";"), "';'-separated chaos schedules to soak under ('none' = fault-free)")
	crashAt = flag.Int64("crash-at", 500, "paid-comparison position of the injected crash in the crash/resume leg")
	dist    = flag.Bool("dist", false, "print the achieved-guarantee distribution as a markdown table")
	modesIn = flag.String("modes", "max", "','-separated workloads to soak (max, topk, score); every schedule×trial runs its three legs once per mode")
	kFlag   = flag.Int("k", 3, "ranks per trial for the topk mode")
	votesIn = flag.Int("votes", 3, "cardinal votes per element for the score mode")
)

// defaultSchedules are the soak's standard fault mixes: a fault-free
// baseline, a mid-run naive spam burst, a permanent expert outage opening
// mid-phase-2, and a ramping partial outage that heals — the last exercises
// upward recovery.
var defaultSchedules = []string{
	"none",
	"spammer:0.3@500-2000",
	"expert-outage:1.0@800+",
	"expert-outage:0.5@300-1200,spammer:0.1-0.4@0-1500",
}

func main() {
	flag.Parse()
	if err := soak(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
}

func soak(w io.Writer) error {
	tmp, err := os.MkdirTemp("", "crowdmax-soak-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	schedules := strings.Split(*plans, ";")
	modes := strings.Split(*modesIn, ",")
	var rows []string
	counts := make(map[string]map[crowdmax.Guarantee]int, len(schedules)*len(modes))
	var failures []string
	total := 0
	for _, sched := range schedules {
		sched = strings.TrimSpace(sched)
		for _, m := range modes {
			m = strings.TrimSpace(m)
			key := rowKey(sched, m, modes)
			rows = append(rows, key)
			counts[key] = make(map[crowdmax.Guarantee]int)
			for t := 0; t < *trials; t++ {
				total++
				g, err := runTrial(tmp, sched, m, t)
				if err != nil {
					failures = append(failures, fmt.Sprintf("schedule %q mode %s trial %d: %v", sched, m, t, err))
					continue
				}
				counts[key][g]++
			}
		}
	}

	if *dist {
		writeDistribution(w, rows, counts)
	} else {
		for _, key := range rows {
			fmt.Fprintf(w, "schedule %-55q %s\n", key, summarize(counts[key]))
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(w, "soak: FAIL (%d/%d trials)\n", len(failures), total)
		return errors.New(strings.Join(failures, "\n"))
	}
	fmt.Fprintf(w, "soak: PASS (%d trials, %d schedules, %d modes)\n", total, len(schedules), len(modes))
	return nil
}

// rowKey names one schedule×mode row; the mode suffix is dropped in the
// single-workload default so existing output stays stable.
func rowKey(sched, m string, modes []string) string {
	if len(modes) == 1 && m == "max" {
		return sched
	}
	return sched + " [" + m + "]"
}

// workloadFor maps a -modes entry onto the session workload each leg runs.
func workloadFor(m string) (crowdmax.Workload, error) {
	switch m {
	case "max":
		return crowdmax.MaxFind(), nil
	case "topk":
		return crowdmax.TopKWorkload(*kFlag), nil
	case "score":
		return crowdmax.ScoreWorkload(crowdmax.ScoreConfig{Votes: *votesIn}), nil
	default:
		return nil, fmt.Errorf("unknown mode %q (want max, topk, or score)", m)
	}
}

// runTrial runs one schedule's three legs under one derived seed and returns
// the guarantee the reference run achieved. Any panic is converted into a
// trial failure — the soak's first invariant.
func runTrial(tmp, sched, m string, t int) (g crowdmax.Guarantee, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("PANIC: %v\n%s", r, debug.Stack())
		}
	}()
	w, err := workloadFor(m)
	if err != nil {
		return "", err
	}
	tseed := crowdmax.NewRand(*seed).ChildN("soak-trial", t).Seed()
	set := dataset.Uniform(*nItems, 0, 1, crowdmax.NewRand(tseed).Child("data"))
	items := set.Items()
	ctx := context.Background()

	// Leg 1: the uninterrupted reference run.
	refCk := filepath.Join(tmp, fmt.Sprintf("ref-%s-%d.ck", m, t))
	ref, err := newSession(set, tseed, refCk, sched, m, 0)
	if err != nil {
		return "", err
	}
	want, err := ref.Run(ctx, w, items)
	if err != nil {
		return "", fmt.Errorf("reference run failed (degradation did not absorb the faults): %w", err)
	}
	if err := checkLabels(want); err != nil {
		return "", err
	}

	// Leg 2: the same run killed by the crash injector.
	crashCk := filepath.Join(tmp, fmt.Sprintf("crash-%s-%d.ck", m, t))
	crashed, err := newSession(set, tseed, crashCk, sched, m, *crashAt)
	if err != nil {
		return "", err
	}
	if _, err := crashed.Run(ctx, w, items); err == nil {
		// The run finished under -crash-at comparisons; there is nothing to
		// resume, and determinism was already checked against the reference.
		return want.Guarantee, nil
	} else if !errors.Is(err, crowdmax.ErrInjectedCrash) {
		return "", fmt.Errorf("crash leg failed with %v, want the injected crash", err)
	}

	// Leg 3: resume from the crashed run's snapshot; the replay must land on
	// the reference run's rung and answer, bit-identically.
	res, err := newSession(set, tseed, crashCk, sched, m, 0)
	if err != nil {
		return "", err
	}
	got, err := res.ResumeWorkload(ctx, w, crashCk, items)
	if err != nil {
		return "", fmt.Errorf("resume failed: %w", err)
	}
	if err := checkLabels(got); err != nil {
		return "", fmt.Errorf("resumed run: %w", err)
	}
	if diff := diffResults(want, got); diff != "" {
		return "", fmt.Errorf("resumed run diverged from the uninterrupted run: %s", diff)
	}
	return want.Guarantee, nil
}

// newSession builds one leg's session: threshold workers with hash
// tie-breaking (order-independent, so replay is exact), a checkpoint at
// ckPath, the schedule's chaos plan, and the degrade controller. crashAfter,
// when > 0, arms the crash injector on top of the schedule.
func newSession(set *crowdmax.Set, tseed uint64, ckPath, sched, m string, crashAfter int64) (*crowdmax.Session, error) {
	dn, err := set.DeltaForU(min(*unFlag, set.Len()))
	if err != nil {
		return nil, err
	}
	de, err := set.DeltaForU(min(*ueFlag, set.Len()))
	if err != nil {
		return nil, err
	}
	var plan crowdmax.ChaosPlan
	if sched != "none" && sched != "" {
		if plan, err = crowdmax.ParseChaosPlan(sched); err != nil {
			return nil, err
		}
	}
	plan.Seed = tseed
	plan.PairHash = true
	plan.CrashAfter = crashAfter
	cfg := crowdmax.Config{
		Naive:      &crowdmax.ThresholdWorker{Delta: dn, Tie: crowdmax.HashTie{Seed: tseed}},
		Expert:     &crowdmax.ThresholdWorker{Delta: de, Tie: crowdmax.HashTie{Seed: tseed + 1}},
		Un:         *unFlag,
		Rand:       crowdmax.NewRand(tseed),
		Checkpoint: crowdmax.CheckpointConfig{Path: ckPath, Every: 64},
		Chaos:      &plan,
		Degrade:    &crowdmax.DegradeConfig{},
	}
	if m == "score" {
		// The score workload votes through a simulated noisy crowd scaled to
		// the naive threshold, matching the service's scoring setup.
		cfg.Valuer = crowdmax.NoisyValuer{Sigma: dn, Seed: tseed + 2}
	}
	return crowdmax.NewSession(cfg)
}

// checkLabels enforces the honesty invariants on one result.
func checkLabels(res crowdmax.Result) error {
	strongest, ok := crowdmax.StrongestGuaranteeFor(res.Rung)
	if !ok {
		return fmt.Errorf("result names unknown rung %q", res.Rung)
	}
	if res.Guarantee.Strength() > strongest.Strength() {
		return fmt.Errorf("label %q is stronger than rung %q can deliver (%q)",
			res.Guarantee, res.Rung, strongest)
	}
	if res.Guarantee.Strength() >= crowdmax.GuaranteeDeltaN.Strength() && !res.Phase1Complete {
		return fmt.Errorf("label %q claimed without a completed phase 1", res.Guarantee)
	}
	if res.Guarantee.Strength() > 0 && res.Best == (crowdmax.Item{}) {
		return fmt.Errorf("label %q claimed with no answer", res.Guarantee)
	}
	for i, rr := range res.Ranked {
		strongest, ok := crowdmax.StrongestGuaranteeFor(rr.Rung)
		if !ok {
			return fmt.Errorf("rank %d names unknown rung %q", i+1, rr.Rung)
		}
		if rr.Guarantee.Strength() > strongest.Strength() {
			return fmt.Errorf("rank %d label %q is stronger than rung %q can deliver (%q)",
				i+1, rr.Guarantee, rr.Rung, strongest)
		}
	}
	return nil
}

// diffResults compares the fields the bit-identical-resume property covers;
// "" means identical.
func diffResults(want, got crowdmax.Result) string {
	var diffs []string
	if want.Best != got.Best {
		diffs = append(diffs, fmt.Sprintf("best %+v vs %+v", want.Best, got.Best))
	}
	if want.Rung != got.Rung {
		diffs = append(diffs, fmt.Sprintf("rung %q vs %q", want.Rung, got.Rung))
	}
	if want.Guarantee != got.Guarantee {
		diffs = append(diffs, fmt.Sprintf("guarantee %q vs %q", want.Guarantee, got.Guarantee))
	}
	if want.Phase1Complete != got.Phase1Complete {
		diffs = append(diffs, fmt.Sprintf("phase1Complete %v vs %v", want.Phase1Complete, got.Phase1Complete))
	}
	if len(want.Candidates) != len(got.Candidates) {
		diffs = append(diffs, fmt.Sprintf("candidates %d vs %d", len(want.Candidates), len(got.Candidates)))
	}
	if want.NaiveComparisons != got.NaiveComparisons || want.ExpertComparisons != got.ExpertComparisons {
		diffs = append(diffs, fmt.Sprintf("paid (%d, %d) vs (%d, %d)",
			want.NaiveComparisons, want.ExpertComparisons, got.NaiveComparisons, got.ExpertComparisons))
	}
	if len(want.Ranked) != len(got.Ranked) {
		diffs = append(diffs, fmt.Sprintf("ranked %d vs %d", len(want.Ranked), len(got.Ranked)))
	} else {
		for i := range want.Ranked {
			if want.Ranked[i] != got.Ranked[i] {
				diffs = append(diffs, fmt.Sprintf("rank %d %+v vs %+v", i+1, want.Ranked[i], got.Ranked[i]))
			}
		}
	}
	if len(want.Scores) != len(got.Scores) {
		diffs = append(diffs, fmt.Sprintf("scores %d vs %d", len(want.Scores), len(got.Scores)))
	} else {
		for i := range want.Scores {
			if want.Scores[i] != got.Scores[i] {
				diffs = append(diffs, fmt.Sprintf("score %d %+v vs %+v", i+1, want.Scores[i], got.Scores[i]))
				break
			}
		}
	}
	return strings.Join(diffs, "; ")
}

// order lists the guarantee columns of the distribution table, strongest
// first.
var order = []crowdmax.Guarantee{
	crowdmax.Guarantee2DeltaE,
	crowdmax.Guarantee3DeltaEWHP,
	crowdmax.Guarantee2DeltaESubset,
	crowdmax.GuaranteeDeltaN,
	crowdmax.GuaranteeNone,
}

func summarize(c map[crowdmax.Guarantee]int) string {
	var parts []string
	for _, g := range order {
		if n := c[g]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s×%d", g, n))
		}
	}
	if len(parts) == 0 {
		return "(no completed trials)"
	}
	return strings.Join(parts, ", ")
}

func writeDistribution(w io.Writer, rows []string, counts map[string]map[crowdmax.Guarantee]int) {
	fmt.Fprint(w, "| schedule |")
	for _, g := range order {
		fmt.Fprintf(w, " %s |", g)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range order {
		fmt.Fprint(w, "---:|")
	}
	fmt.Fprintln(w)
	for _, key := range rows {
		fmt.Fprintf(w, "| `%s` |", key)
		for _, g := range order {
			fmt.Fprintf(w, " %d |", counts[key][g])
		}
		fmt.Fprintln(w)
	}
}
