package main

import (
	"strings"
	"testing"
)

// TestSoakSmoke runs a small deterministic soak — every default schedule,
// with the crash/resume leg — and requires a clean PASS. This is the same
// configuration `make soak-smoke` runs in CI, shrunk to test-suite size.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is a multi-run harness; skipped with -short")
	}
	oldTrials, oldN, oldSeed := *trials, *nItems, *seed
	*trials, *nItems, *seed = 2, 250, 7
	t.Cleanup(func() { *trials, *nItems, *seed = oldTrials, oldN, oldSeed })

	var out strings.Builder
	if err := soak(&out); err != nil {
		t.Fatalf("soak failed:\n%s\n%v", out.String(), err)
	}
	if !strings.Contains(out.String(), "soak: PASS") {
		t.Fatalf("soak did not report PASS:\n%s", out.String())
	}
}

// TestSoakAllModes runs the three-leg trial for every workload — the
// per-mode crash/resume coverage `make soak-smoke` exercises in CI.
func TestSoakAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is a multi-run harness; skipped with -short")
	}
	oldTrials, oldN, oldSeed, oldPlans, oldModes := *trials, *nItems, *seed, *plans, *modesIn
	*trials, *nItems, *seed, *plans, *modesIn = 2, 250, 7, "none;expert-outage:1.0@800+", "max,topk,score"
	t.Cleanup(func() { *trials, *nItems, *seed, *plans, *modesIn = oldTrials, oldN, oldSeed, oldPlans, oldModes })

	var out strings.Builder
	if err := soak(&out); err != nil {
		t.Fatalf("soak failed:\n%s\n%v", out.String(), err)
	}
	got := out.String()
	if !strings.Contains(got, "soak: PASS (12 trials, 2 schedules, 3 modes)") {
		t.Fatalf("soak did not report a full-matrix PASS:\n%s", got)
	}
	for _, row := range []string{"[max]", "[topk]", "[score]"} {
		if !strings.Contains(got, row) {
			t.Fatalf("per-mode row %q missing:\n%s", row, got)
		}
	}
}

// TestSoakDistributionTable checks the -dist markdown rendering.
func TestSoakDistributionTable(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is a multi-run harness; skipped with -short")
	}
	oldTrials, oldN, oldSeed, oldPlans, oldDist := *trials, *nItems, *seed, *plans, *dist
	*trials, *nItems, *seed, *plans, *dist = 1, 250, 7, "expert-outage:1.0@0+", true
	t.Cleanup(func() { *trials, *nItems, *seed, *plans, *dist = oldTrials, oldN, oldSeed, oldPlans, oldDist })

	var out strings.Builder
	if err := soak(&out); err != nil {
		t.Fatalf("soak failed:\n%s\n%v", out.String(), err)
	}
	got := out.String()
	if !strings.Contains(got, "| schedule |") || !strings.Contains(got, "| `expert-outage:1.0@0+` |") {
		t.Fatalf("missing table rows:\n%s", got)
	}
	// A full outage from comparison 0 can never reach an expert rung: the
	// trial must land exactly one run in the δn column.
	if !strings.Contains(got, "| 0 | 0 | 0 | 1 | 0 |") {
		t.Fatalf("expected a single δn trial in the distribution:\n%s", got)
	}
}
