// Command benchrun regenerates the tables and figures of the paper's
// evaluation (Section 5 and Appendix C) on the simulated substrate and
// prints them as text tables (or CSV).
//
// Usage:
//
//	benchrun [flags] <experiment> [<experiment>...]
//	benchrun all
//
// Experiments: fig2, fig3, fig4, fig5, fig6, fig7, fig9, fig10,
// retention, table1, table2, search, majority, plus the extensions epsilon
// (residual-error robustness), cascade (multi-class workers), steps (the
// Section 3 time model), bracket (the single-elimination baseline under
// both error models), adversary (phase-1 retention under poisoned
// workers, with and without worker health tracking) and trust (gold vs
// agreement-graph vs hybrid worker scoring under spammer/colluder mixes).
//
// Figures with multiple panels (3, 4, 5, 6, 7, 9, 10) print one block per
// panel, matching the paper's layout: (un, ue) ∈ {(10, 5), (50, 10)} and,
// for the cost figures, ce ∈ {10, 20, 50}.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"crowdmax/internal/checkpoint"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/experiment"
	"crowdmax/internal/obs"
	"crowdmax/internal/parallel"
)

var (
	trials   = flag.Int("trials", 10, "random instances per data point")
	seed     = flag.Uint64("seed", 2015, "root random seed")
	quick    = flag.Bool("quick", false, "smaller sweep for a fast smoke run")
	csvOut   = flag.Bool("csv", false, "emit figures as CSV instead of text tables")
	jsonOut  = flag.Bool("json", false, "emit figures as JSON instead of text tables")
	maxSize  = flag.Int("nmax", 5000, "largest input size in sweeps")
	par      = flag.Int("parallel", 0, "goroutines fanning independent trials out (0 = all CPUs, 1 = sequential; output is identical for every value)")
	benchOut = flag.String("benchout", "", "suppress figure output, time each experiment at -parallel=1 and -parallel=N, and write the wall-clock comparison as JSON to this file")
	obsAddr  = flag.String("obs-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address, e.g. localhost:6060")
	traceOut = flag.String("trace-out", "", "write the structured JSONL event trace to this file")
	budget   = flag.Int64("budget", 0, "hard cap on total comparisons per trial (0 = unlimited); a trial that hits the cap fails its sweep with the budget error, and the same seed + cap truncates identically on every run")
	timeout  = flag.Duration("timeout", 0, "wall-clock deadline for the whole run (e.g. 2m); 0 = none")
	trustOut = flag.String("trust-out", "", "with the trust experiment, also write its kind:\"trust\" JSON report to this file (atomic write; benchcheck-gated)")
)

// out overrides where figures are rendered (the -benchout timing mode sets
// io.Discard so only wall-clock time is measured); nil means os.Stdout,
// resolved per write so tests can swap the real stdout.
var out io.Writer

func dst() io.Writer {
	if out != nil {
		return out
	}
	return os.Stdout
}

// workers is the effective -parallel value; the -benchout mode flips it
// between 1 and the requested width for the timed runs.
var workers int

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	workers = *par
	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
			"fig9", "fig10", "retention", "table1", "table2", "search",
			"majority", "epsilon", "cascade", "steps", "bracket", "adversary",
			"trust"}
	}
	obsCleanup, err := setupObs()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
		os.Exit(1)
	}
	// Ctrl-C (or -timeout) cancels the in-flight experiment promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	code := 0
	if *benchOut != "" {
		if err := runBench(ctx, names); err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
			code = 1
		}
	} else {
		for _, name := range names {
			if err := run(ctx, strings.ToLower(name)); err != nil {
				fmt.Fprintf(os.Stderr, "benchrun %s: %v\n", name, err)
				code = 1
				break
			}
		}
	}
	stop()
	obsCleanup()
	os.Exit(code)
}

// setupObs enables the observability layer when -obs-addr or -trace-out is
// set; the returned cleanup flushes and closes the trace file. With neither
// flag the layer stays disabled and the hot paths pay only nil checks.
func setupObs() (cleanup func(), err error) {
	cleanup = func() {}
	if *obsAddr == "" && *traceOut == "" {
		return cleanup, nil
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return nil, err
		}
		bw := bufio.NewWriterSize(f, 1<<16)
		tracer = obs.NewTracer(bw)
		cleanup = func() {
			if terr := tracer.Err(); terr != nil {
				fmt.Fprintf(os.Stderr, "benchrun: trace write: %v\n", terr)
			}
			if ferr := bw.Flush(); ferr != nil {
				fmt.Fprintf(os.Stderr, "benchrun: trace flush: %v\n", ferr)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "benchrun: wrote %d trace events to %s\n", tracer.Events(), *traceOut)
		}
	}
	obs.Enable(tracer)
	if *obsAddr != "" {
		addr, err := obs.Serve(*obsAddr)
		if err != nil {
			cleanup()
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "benchrun: metrics on http://%s/debug/vars, profiles on http://%s/debug/pprof/\n", addr, addr)
	}
	return cleanup, nil
}

// runBench times every named experiment twice — sequentially and at the
// requested parallel width — and writes the comparison to -benchout. The
// figures themselves are discarded; determinism means both runs produce
// identical output anyway.
func runBench(ctx context.Context, names []string) error {
	out = io.Discard
	width := parallel.Normalize(*par)
	type expTiming struct {
		Name       string  `json:"name"`
		SeqSeconds float64 `json:"seq_seconds"`
		ParSeconds float64 `json:"par_seconds"`
		Speedup    float64 `json:"speedup"`
	}
	report := struct {
		Cores       int         `json:"cores"`
		Gomaxprocs  int         `json:"gomaxprocs"`
		Workers     int         `json:"workers"`
		Quick       bool        `json:"quick"`
		Experiments []expTiming `json:"experiments"`
	}{
		Cores:      runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Workers:    width,
		Quick:      *quick,
	}
	for _, name := range names {
		name = strings.ToLower(name)
		workers = 1
		start := time.Now()
		if err := run(ctx, name); err != nil {
			return fmt.Errorf("%s (sequential): %w", name, err)
		}
		seq := time.Since(start).Seconds()
		workers = width
		start = time.Now()
		if err := run(ctx, name); err != nil {
			return fmt.Errorf("%s (parallel): %w", name, err)
		}
		parSec := time.Since(start).Seconds()
		t := expTiming{Name: name, SeqSeconds: seq, ParSeconds: parSec}
		if parSec > 0 {
			t.Speedup = seq / parSec
		}
		report.Experiments = append(report.Experiments, t)
		fmt.Fprintf(os.Stderr, "%-10s seq %.3fs  par(%d) %.3fs  speedup %.2fx\n",
			name, seq, width, parSec, t.Speedup)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	// Atomic write: an interrupted run can never leave a truncated results
	// file behind — readers see either the old contents or the new ones.
	return checkpoint.WriteFileAtomic(*benchOut, append(data, '\n'), 0o644)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: benchrun [flags] <experiment>...

experiments:
  fig2       worker accuracy vs panel size, DOTS and CARS regimes
  fig3       accuracy (avg true rank) vs n, three approaches
  fig4       comparison counts vs n, avg and worst case
  fig5       average cost vs n (ce = 10, 20, 50)
  fig6       accuracy vs n under mis-estimated un
  fig7       average cost vs n under mis-estimated un
  fig9       worst-case cost vs n (Appendix C)
  fig10      worst-case cost vs n under mis-estimated un (Appendix C)
  retention  Section 5.2 phase-1 max-retention statistics
  table1     DOTS last-round ranking on the simulated platform
  table2     CARS last-round ranking on the simulated platform
  search     Section 5.3 search-result evaluation
  majority   Section 3.2 majority-vote error vs Chernoff bound
  epsilon    extension: accuracy degradation under residual error ε > 0
  cascade    extension: three-class worker cascade vs two-level Algorithm 1
  steps      extension: logical steps (the Section 3 time model) vs n
  bracket    extension: single-elimination baseline under both error models
  adversary  extension: phase-1 max retention under poisoned workers, with
             and without gold-probe health tracking
  trust      extension: gold vs agreement-graph vs hybrid worker scoring
             under spammer/colluder-clique mixes (retention and cost per
             arm; -trust-out writes the kind:"trust" JSON report)
  all        everything above

flags:
`)
	flag.PrintDefaults()
}

// sweeps returns the paper's two (un, ue) panel configurations.
func sweeps() []experiment.Sweep {
	ns := []int{1000, 2000, 3000, 4000, 5000}
	tr := *trials
	if *quick {
		ns = []int{400, 800}
		if tr > 4 {
			tr = 4
		}
	}
	var kept []int
	for _, n := range ns {
		if n <= *maxSize {
			kept = append(kept, n)
		}
	}
	if len(kept) == 0 {
		kept = ns[:1]
	}
	lim := dispatch.Limits{MaxTotal: *budget}
	return []experiment.Sweep{
		{Ns: kept, Un: 10, Ue: 5, Trials: tr, Seed: *seed, Workers: workers, Budget: lim},
		{Ns: kept, Un: 50, Ue: 10, Trials: tr, Seed: *seed, Workers: workers, Budget: lim},
	}
}

func emit(fig experiment.Figure) error {
	if *jsonOut {
		return fig.WriteJSON(dst())
	}
	if *csvOut {
		return fig.WriteCSV(dst())
	}
	if err := fig.WriteText(dst()); err != nil {
		return err
	}
	fmt.Fprintln(dst())
	return nil
}

func run(ctx context.Context, name string) error {
	switch name {
	case "fig2":
		cfg := experiment.Fig2Config{Seed: *seed, Workers: workers}
		if *quick {
			cfg.PairsPerBand, cfg.Repeats = 10, 5
		}
		dots, cars, err := experiment.Fig2(cfg)
		if err != nil {
			return err
		}
		if err := emit(dots); err != nil {
			return err
		}
		return emit(cars)
	case "fig3":
		for _, s := range sweeps() {
			fig, err := experiment.Fig3(ctx, s)
			if err != nil {
				return err
			}
			if err := emit(fig); err != nil {
				return err
			}
		}
		return nil
	case "fig4":
		for _, s := range sweeps() {
			fig, err := experiment.Fig4(ctx, s)
			if err != nil {
				return err
			}
			if err := emit(fig); err != nil {
				return err
			}
		}
		return nil
	case "fig5", "fig9":
		for _, s := range sweeps() {
			for _, ce := range []float64{10, 20, 50} {
				var fig experiment.Figure
				var err error
				if name == "fig5" {
					fig, err = experiment.Fig5(ctx, experiment.CostConfig{Sweep: s, CE: ce})
				} else {
					fig, err = experiment.Fig9(ctx, experiment.CostConfig{Sweep: s, CE: ce})
				}
				if err != nil {
					return err
				}
				if err := emit(fig); err != nil {
					return err
				}
			}
		}
		return nil
	case "fig6":
		for _, s := range sweeps() {
			fig, err := experiment.Fig6(ctx, experiment.Fig6Config{Sweep: s})
			if err != nil {
				return err
			}
			if err := emit(fig); err != nil {
				return err
			}
		}
		return nil
	case "fig7", "fig10":
		for _, s := range sweeps() {
			for _, ce := range []float64{10, 20, 50} {
				cfg := experiment.FactorCostConfig{CostConfig: experiment.CostConfig{Sweep: s, CE: ce}}
				var fig experiment.Figure
				var err error
				if name == "fig7" {
					fig, err = experiment.Fig7(ctx, cfg)
				} else {
					fig, err = experiment.Fig10(cfg)
				}
				if err != nil {
					return err
				}
				if err := emit(fig); err != nil {
					return err
				}
			}
		}
		return nil
	case "retention":
		for _, s := range sweeps() {
			res, err := experiment.Retention(ctx, experiment.Fig6Config{Sweep: s})
			if err != nil {
				return err
			}
			if err := res.WriteText(dst()); err != nil {
				return err
			}
			fmt.Fprintln(dst())
		}
		return nil
	case "table1":
		tab, err := experiment.Table1(ctx, experiment.CrowdConfig{Seed: *seed, Spammers: 3, Parallel: workers})
		if err != nil {
			return err
		}
		if err := tab.WriteText(dst()); err != nil {
			return err
		}
		fmt.Fprintln(dst())
		return nil
	case "table2":
		tab, _, err := experiment.Table2(ctx, experiment.CrowdConfig{Seed: *seed, Parallel: workers})
		if err != nil {
			return err
		}
		if err := tab.WriteText(dst()); err != nil {
			return err
		}
		fmt.Fprintln(dst())
		return nil
	case "search":
		res, err := experiment.SearchEval(ctx, experiment.SearchConfig{Seed: *seed, Workers: workers})
		if err != nil {
			return err
		}
		if err := res.WriteText(dst()); err != nil {
			return err
		}
		fmt.Fprintln(dst())
		return nil
	case "majority":
		cfg := experiment.MajorityConfig{Seed: *seed, Workers: workers}
		if *quick {
			cfg.Trials = 300
		}
		res, err := experiment.MajorityBound(cfg)
		if err != nil {
			return err
		}
		if err := res.WriteText(dst()); err != nil {
			return err
		}
		fmt.Fprintln(dst())
		return nil
	case "epsilon":
		for _, s := range sweeps() {
			fig, err := experiment.EpsilonSweep(ctx, experiment.EpsilonConfig{Sweep: s})
			if err != nil {
				return err
			}
			if err := emit(fig); err != nil {
				return err
			}
		}
		return nil
	case "steps":
		for _, s := range sweeps() {
			fig, err := experiment.StepsExperiment(ctx, s)
			if err != nil {
				return err
			}
			if err := emit(fig); err != nil {
				return err
			}
		}
		return nil
	case "bracket":
		for _, s := range sweeps() {
			fig, err := experiment.BracketAccuracy(ctx, experiment.BracketConfig{Sweep: s})
			if err != nil {
				return err
			}
			if err := emit(fig); err != nil {
				return err
			}
		}
		return nil
	case "adversary":
		cfg := experiment.AdversaryConfig{Seed: *seed, Workers: workers}
		if *quick {
			cfg.Trials = 10
			cfg.Fractions = []float64{0, 0.2}
		}
		fig, err := experiment.AdversarySweep(ctx, cfg)
		if err != nil {
			return err
		}
		return emit(fig)
	case "trust":
		cfg := experiment.TrustConfig{Seed: *seed, Workers: workers}
		if *quick {
			cfg.Trials = 8
			cfg.Mixes = []experiment.TrustMix{{Spammers: 0, Colluders: 0}, {Spammers: 0, Colluders: 3}}
		}
		rep, err := experiment.TrustSweep(ctx, cfg)
		if err != nil {
			return err
		}
		if *trustOut != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := checkpoint.WriteFileAtomic(*trustOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		return emit(rep.Figure())
	case "cascade":
		cfg := experiment.CascadeConfig{Seed: *seed, Trials: *trials, PriceRatio: 50, Workers: workers}
		if *quick {
			cfg.Ns = []int{400, 800}
			cfg.Us = [3]int{20, 6, 2}
			if cfg.Trials > 4 {
				cfg.Trials = 4
			}
		}
		fig, err := experiment.CascadeExperiment(ctx, cfg)
		if err != nil {
			return err
		}
		return emit(fig)
	default:
		return fmt.Errorf("unknown experiment %q (run benchrun without arguments for the list)", name)
	}
}
