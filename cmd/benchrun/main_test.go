package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"strings"
	"testing"
)

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", errRun, out)
	}
	return out
}

func withQuick(t *testing.T) {
	t.Helper()
	oldQuick, oldTrials := *quick, *trials
	*quick = true
	*trials = 2
	t.Cleanup(func() { *quick, *trials = oldQuick, oldTrials })
}

func TestRunEveryExperimentQuick(t *testing.T) {
	withQuick(t)
	wants := map[string]string{
		"fig2":      "Figure 2",
		"fig3":      "Figure 3",
		"fig4":      "Figure 4",
		"fig5":      "Figure 5",
		"fig6":      "Figure 6",
		"fig7":      "Figure 7",
		"fig9":      "Figure 9",
		"fig10":     "Figure 10",
		"retention": "max retention",
		"table1":    "Table 1",
		"table2":    "Table 2",
		"search":    "evaluation of search results",
		"majority":  "Chernoff",
		"epsilon":   "Residual-error",
		"cascade":   "cascade",
		"steps":     "Logical steps",
		"bracket":   "Bracket baseline",
		"adversary": "Adversarial sweep",
	}
	for name, want := range wants {
		out := capture(t, func() error { return run(context.Background(), name) })
		if !strings.Contains(out, want) {
			t.Errorf("%s output missing %q", name, want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCaseInsensitiveNameViaMainPath(t *testing.T) {
	withQuick(t)
	// main lowercases names before dispatch; run itself expects lower case.
	out := capture(t, func() error { return run(context.Background(), strings.ToLower("TABLE1")) })
	if !strings.Contains(out, "Table 1") {
		t.Fatal("dispatch failed")
	}
}

func TestCSVMode(t *testing.T) {
	withQuick(t)
	oldCSV := *csvOut
	*csvOut = true
	t.Cleanup(func() { *csvOut = oldCSV })
	out := capture(t, func() error { return run(context.Background(), "fig3") })
	if !strings.HasPrefix(out, "n,") {
		t.Fatalf("CSV output starts with %q", strings.SplitN(out, "\n", 2)[0])
	}
}

func TestNMaxFilter(t *testing.T) {
	withQuick(t)
	oldMax := *maxSize
	*maxSize = 400
	t.Cleanup(func() { *maxSize = oldMax })
	out := capture(t, func() error { return run(context.Background(), "fig3") })
	if strings.Contains(out, "\n800 ") {
		t.Fatal("nmax filter did not drop n=800")
	}
}

func TestJSONMode(t *testing.T) {
	withQuick(t)
	oldJSON := *jsonOut
	*jsonOut = true
	t.Cleanup(func() { *jsonOut = oldJSON })
	out := capture(t, func() error { return run(context.Background(), "fig3") })
	if !strings.Contains(out, `"title"`) || !strings.Contains(out, `"curves"`) {
		t.Fatalf("JSON output malformed:\n%.200s", out)
	}
}
