// Command maxcrowdd is the long-running multi-tenant crowd-workload service:
// an HTTP API over a pool of concurrent crowdmax Sessions with per-tenant
// admission control, durable job records, and graceful drain. Each job names
// a workload mode — "max" (two-phase max-finding, the default), "topk"
// (ranked extraction, "k" ranks), or "score" (cardinal crowd scoring,
// "votes" votes per element) — and mixed-mode streams share the same slots,
// admission budgets, and drain/resume machinery.
//
// Endpoints (see internal/service for the full contract):
//
//	POST /v1/jobs              submit a job (202; 400/429/503 on refusal)
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         job status and result
//	GET  /v1/jobs/{id}/events  JSONL event trace (?follow=1 streams)
//	GET  /healthz              liveness + drain status
//	GET  /debug/vars, /debug/pprof/...
//
// SIGTERM or SIGINT starts a graceful drain: admissions stop (503), every
// running session checkpoints and is persisted as interrupted, and the
// process exits 0. A later maxcrowdd over the same -dir resumes the
// interrupted jobs to bit-identical results.
//
// Examples:
//
//	maxcrowdd -dir /var/lib/maxcrowdd
//	maxcrowdd -addr 127.0.0.1:0 -addr-file /tmp/addr -dir state
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdmax"
	"crowdmax/internal/checkpoint"
	"crowdmax/internal/faults"
	"crowdmax/internal/service"
)

var (
	addr     = flag.String("addr", "127.0.0.1:8080", "listen address; use port 0 with -addr-file to pick a free port")
	addrFile = flag.String("addr-file", "", "write the bound listen address to this file once serving (for scripts using -addr :0)")
	dir      = flag.String("dir", "", "state directory for job records and session checkpoints (required)")
	maxConc  = flag.Int("max-concurrent", 8, "max concurrently admitted sessions; submissions past the cap get 429")
	ce       = flag.Float64("ce", 10, "price of one expert comparison (cn = 1)")
	tenJobs  = flag.Int("tenant-max-jobs", 0, "default per-tenant cap on concurrent jobs (0 = unlimited)")
	tenCost  = flag.Float64("tenant-max-cost", 0, "default per-tenant cap on cumulative monetary spend (0 = unlimited)")
	cmpLat   = flag.Duration("cmp-latency", 0, "sleep per comparison, emulating crowd round-trips (answers unchanged)")
	ckEvery  = flag.Int("checkpoint-every", 64, "per-job snapshot interval in paid comparisons")
	retryAft = flag.Duration("retry-after", time.Second, "Retry-After hint attached to 429 rejections")
	drainTmo = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight jobs to checkpoint on shutdown")
	faultsP  = flag.String("faults", "", "disk fault plan for torture runs, e.g. 'torn:0.5~0.05%*.job.tmp-*,enospc~0.02' (see internal/faults)")
	faultsS  = flag.Uint64("faults-seed", 1, "seed of the fault plan's probabilistic rules")
	allowF   = flag.Bool("allow-faults", false, "honor JobSpec.Fault tags (injected workload panics); torture runs only")
	watchdog = flag.Duration("watchdog", 0, "flag running jobs with no observable progress for this long (0 = off)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "maxcrowdd:", err)
		os.Exit(1)
	}
}

func run() error {
	if *dir == "" {
		return errors.New("-dir is required")
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "maxcrowdd: "+format+"\n", args...)
	}
	var fsys faults.FS
	if *faultsP != "" {
		plan, err := faults.ParsePlan(*faultsP)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		plan.Seed = *faultsS
		fsys = faults.NewInjector(faults.OS(), plan)
		logf("disk fault injection armed: %s (seed %d)", *faultsP, *faultsS)
	}
	srv, err := service.NewServer(service.Options{
		Dir:             *dir,
		MaxConcurrent:   *maxConc,
		Prices:          crowdmax.Prices{Naive: 1, Expert: *ce},
		DefaultTenant:   service.TenantLimits{MaxJobs: *tenJobs, MaxCost: *tenCost},
		CmpLatency:      *cmpLat,
		CheckpointEvery: *ckEvery,
		RetryAfter:      *retryAft,
		FS:              fsys,
		AllowFaults:     *allowF,
		WatchdogAfter:   *watchdog,
		Logf:            logf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Atomic, so a watcher never reads a half-written address.
		if err := checkpoint.WriteFileAtomic(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	logf("serving on %s (state %s, %d slots)", bound, *dir, *maxConc)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: stop admissions, checkpoint in-flight sessions, persist
	// every record — then close the HTTP listener. The server keeps answering
	// status reads while the drain runs so clients can watch it settle.
	logf("signal received; draining (timeout %s)", *drainTmo)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTmo)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		httpSrv.Close()
		return err
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	logf("drained cleanly")
	return nil
}
