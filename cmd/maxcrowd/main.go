// Command maxcrowd runs the expert-aware max-finding algorithm (or one of
// its single-class baselines) on a generated problem instance and reports
// the result, its true rank, the comparison counts, and the monetary cost.
//
// Examples:
//
//	maxcrowd -n 2000 -un 10 -ue 5
//	maxcrowd -dataset cars -algo 2mf-naive
//	maxcrowd -n 5000 -un 20 -estimate -ce 50
//	maxcrowd -input mydata.csv -un 8
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"crowdmax"
	"crowdmax/internal/dataset"
	"crowdmax/internal/obs"
)

var (
	n        = flag.Int("n", 1000, "instance size (uniform dataset)")
	un       = flag.Int("un", 10, "target un(n): elements naive-indistinguishable from the max")
	ue       = flag.Int("ue", 5, "target ue(n): elements expert-indistinguishable from the max")
	algo     = flag.String("algo", "alg1", "algorithm: alg1, 2mf-naive, 2mf-expert, randomized, bracket")
	reps     = flag.Int("rep", 1, "answers per match for -algo bracket (odd)")
	data     = flag.String("dataset", "uniform", "dataset: uniform, cars, dots, search")
	input    = flag.String("input", "", "CSV file of label,value rows (overrides -dataset)")
	ce       = flag.Float64("ce", 10, "price of one expert comparison (cn = 1)")
	seed     = flag.Uint64("seed", 1, "random seed")
	estimat  = flag.Bool("estimate", false, "estimate un from a training split (Algorithm 4) instead of using the true value")
	topk     = flag.Int("topk", 0, "with -algo alg1: return the top-k elements instead of just the max")
	par      = flag.Int("parallel", 0, "evaluate comparison batches with this many goroutines (0 = off); switches tie-breaking to an order-independent hash, so results differ from -parallel=0 but are identical for every width >= 1")
	obsAddr  = flag.String("obs-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address, e.g. localhost:6060")
	traceOut = flag.String("trace-out", "", "write the structured JSONL event trace to this file")
	budget   = flag.Float64("budget", 0, "hard cap on monetary spend (cn=1, ce from -ce); 0 = unlimited. A run that hits the cap stops with the best-so-far answer")
	timeout  = flag.Duration("timeout", 0, "wall-clock deadline for the run (e.g. 30s); 0 = none")
	ckPath   = flag.String("checkpoint", "", "write crash-recovery snapshots to this file (alg1 only; switches tie-breaking to an order-independent hash)")
	ckEvery  = flag.Int("checkpoint-every", 500, "with -checkpoint: also snapshot every N paid comparisons, besides phase boundaries")
	resumeCk = flag.String("resume", "", "resume a truncated alg1 run from this checkpoint file; flags must match the original run")
	chaosArg = flag.String("chaos", "", "inject faults (alg1 only): comma-separated spec with optional expert- prefix, fraction ramps, and @from-to comparison windows, e.g. crash:500, spammer:0.2, expert-outage:1.0@1000+, spammer:0.1-0.5@0-2000, adversary, colluder:7, clique:0.3:7 (coordinated ring controlling 30% of the crowd, promoting item 7), degrader:0.1:0.01")
	degraded = flag.Bool("degrade", true, "session runs (-checkpoint/-resume/-chaos): walk down the quality ladder instead of failing when experts, budget, or deadline disappear; -degrade=false restores hard failures")
	schedArg = flag.String("sched", "lockstep", "comparison schedule: lockstep (one batch per tournament group, the paper's execution) or dag (drain all data-independent groups per logical step); identical answers and cost, fewer rounds")
	mode     = flag.String("mode", "max", "session workload: max (two-phase max-finding), topk (ranked top -k extraction), score (crowd scoring with -votes cardinal votes per element). topk and score always run through the session engine, so -checkpoint/-resume/-chaos compose with them")
	kRanks   = flag.Int("k", 0, "with -mode topk: number of ranks to extract (required, ≥ 1)")
	votes    = flag.Int("votes", 0, "with -mode score: cardinal votes per element (0 = engine default of 3)")
)

// parseSched maps the -sched flag onto a scheduler kind.
func parseSched() (crowdmax.SchedulerKind, error) {
	switch *schedArg {
	case "lockstep":
		return crowdmax.LockstepScheduler, nil
	case "dag":
		return crowdmax.DAGScheduler, nil
	default:
		return crowdmax.LockstepScheduler, fmt.Errorf("unknown scheduler %q (want lockstep or dag)", *schedArg)
	}
}

func main() {
	flag.Parse()
	cleanup, err := setupObs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "maxcrowd:", err)
		os.Exit(1)
	}
	// Ctrl-C cancels the run; the algorithms return their best-so-far
	// partial answer on the way out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	errRun := run(ctx)
	stop()
	cleanup()
	if errRun != nil {
		fmt.Fprintln(os.Stderr, "maxcrowd:", errRun)
		os.Exit(1)
	}
}

// setupObs enables the observability layer when -obs-addr or -trace-out is
// set; the returned cleanup flushes and closes the trace file.
func setupObs() (cleanup func(), err error) {
	cleanup = func() {}
	if *obsAddr == "" && *traceOut == "" {
		return cleanup, nil
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return nil, err
		}
		bw := bufio.NewWriterSize(f, 1<<16)
		tracer = obs.NewTracer(bw)
		cleanup = func() {
			if terr := tracer.Err(); terr != nil {
				fmt.Fprintf(os.Stderr, "maxcrowd: trace write: %v\n", terr)
			}
			if ferr := bw.Flush(); ferr != nil {
				fmt.Fprintf(os.Stderr, "maxcrowd: trace flush: %v\n", ferr)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "maxcrowd: wrote %d trace events to %s\n", tracer.Events(), *traceOut)
		}
	}
	obs.Enable(tracer)
	if *obsAddr != "" {
		addr, err := obs.Serve(*obsAddr)
		if err != nil {
			cleanup()
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "maxcrowd: metrics on http://%s/debug/vars, profiles on http://%s/debug/pprof/\n", addr, addr)
	}
	return cleanup, nil
}

func run(ctx context.Context) error {
	r := crowdmax.NewRand(*seed)

	schedKind, err := parseSched()
	if err != nil {
		return err
	}
	set, err := buildDataset(r.Child("data"))
	if err != nil {
		return err
	}
	deltaN, err := set.DeltaForU(min(*un, set.Len()))
	if err != nil {
		return err
	}
	deltaE, err := set.DeltaForU(min(*ue, set.Len()))
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: %d elements, max %q (value %.4g)\n",
		*data, set.Len(), label(set.Max()), set.Max().Value)
	fmt.Printf("thresholds: δn=%.4g (un=%d), δe=%.4g (ue=%d)\n", deltaN, *un, deltaE, *ue)

	naive := crowdmax.NewThresholdWorker(deltaN, 0, r.Child("naive"))
	expert := crowdmax.NewThresholdWorker(deltaE, 0, r.Child("expert"))
	if *par >= 1 {
		// Concurrent batches need order-independent workers: replace the
		// stream-driven random tie-breaking with a pure hash of each pair.
		naive = &crowdmax.ThresholdWorker{Delta: deltaN, Tie: crowdmax.HashTie{Seed: *seed}}
		expert = &crowdmax.ThresholdWorker{Delta: deltaE, Tie: crowdmax.HashTie{Seed: *seed + 1}}
	}
	prices := crowdmax.Prices{Naive: 1, Expert: *ce}

	unEst := *un
	if *estimat {
		ledger := crowdmax.NewLedger()
		no := crowdmax.NewOracle(naive, crowdmax.Naive, ledger, nil)
		est, err := crowdmax.EstimateUn(ctx, set.Items(), no, crowdmax.EstimateUnOptions{
			Perr: 0.5, N: set.Len(),
		})
		if err != nil {
			return err
		}
		if est > set.Len()/4 {
			est = set.Len() / 4
		}
		if est < 1 {
			est = 1
		}
		fmt.Printf("Algorithm 4 estimated un=%d (%d training comparisons)\n", est, ledger.Naive())
		unEst = est
	}

	w, err := buildWorkload()
	if err != nil {
		return err
	}
	if *mode != "max" || *ckPath != "" || *resumeCk != "" || *chaosArg != "" {
		if *algo != "alg1" || *topk > 1 {
			return fmt.Errorf("-mode topk/score and -checkpoint/-resume/-chaos support -algo alg1 without -topk only")
		}
		if *par >= 1 {
			return fmt.Errorf("session runs (-mode topk/score, -checkpoint/-resume/-chaos) are sequential; drop -parallel")
		}
		return runSession(ctx, w, set, deltaN, deltaE, unEst, prices)
	}

	ledger := crowdmax.NewLedger()
	no := crowdmax.NewOracle(naive, crowdmax.Naive, ledger, crowdmax.NewMemo())
	eo := crowdmax.NewOracle(expert, crowdmax.Expert, ledger, crowdmax.NewMemo())
	if *budget > 0 {
		b := crowdmax.NewBudget(crowdmax.BudgetLimits{
			MaxCost: *budget,
			Prices:  prices,
		})
		no.WithBudget(b)
		eo.WithBudget(b)
	}
	if *par >= 1 {
		no.ParallelBatch(*par)
		eo.ParallelBatch(*par)
	}
	if sc := obs.Trial(fmt.Sprintf("maxcrowd/%s/%s", *algo, *data), *seed); sc != nil {
		no.WithObs(sc)
		eo.WithObs(sc)
	}

	var best crowdmax.Item
	switch *algo {
	case "alg1":
		if *topk > 1 {
			top, err := crowdmax.TopK(ctx, set.Items(), no, eo, crowdmax.TopKOptions{K: *topk, U: unEst, Scheduler: schedKind})
			if err != nil {
				return err
			}
			fmt.Printf("top %d (best first):\n", len(top))
			for i, it := range top {
				fmt.Printf("  %d. %q (value %.4g, true rank %d)\n", i+1, label(it), it.Value, set.Rank(it.ID))
			}
			best = top[0]
			break
		}
		res, err := crowdmax.FindMax(ctx, set.Items(), no, eo, crowdmax.FindMaxOptions{Un: unEst, Scheduler: schedKind})
		if err != nil {
			if terr := truncated(err, res.Best, ledger, prices); terr != nil {
				return terr
			}
			return err
		}
		best = res.Best
		fmt.Printf("phase 1 kept %d candidates\n", len(res.Candidates))
	case "2mf-naive":
		best, err = crowdmax.TwoMaxFindWith(ctx, set.Items(), no, schedKind)
	case "2mf-expert":
		best, err = crowdmax.TwoMaxFindWith(ctx, set.Items(), eo, schedKind)
	case "randomized":
		best, err = crowdmax.RandomizedMaxFind(ctx, set.Items(), eo, crowdmax.RandomizedOptions{R: r.Child("p2"), Scheduler: schedKind})
	case "bracket":
		// Repetition needs fresh answers: use a non-memoized oracle.
		plain := crowdmax.NewOracle(naive, crowdmax.Naive, ledger, nil)
		if *budget > 0 {
			plain.WithBudget(crowdmax.NewBudget(crowdmax.BudgetLimits{MaxCost: *budget, Prices: prices}))
		}
		best, err = crowdmax.TournamentMax(ctx, set.Items(), plain, crowdmax.BracketOptions{Repetitions: *reps})
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		if terr := truncated(err, best, ledger, prices); terr != nil {
			return terr
		}
		return err
	}

	fmt.Printf("returned %q (value %.4g), true rank %d of %d\n",
		label(best), best.Value, set.Rank(best.ID), set.Len())
	fmt.Printf("comparisons: %d naive, %d expert; cost C(n) = %.0f (cn=1, ce=%g)\n",
		ledger.Naive(), ledger.Expert(), ledger.Cost(prices), *ce)
	return nil
}

// buildWorkload maps the -mode flag (plus -k and -votes) onto a session
// workload, rejecting flag combinations that belong to a different mode.
func buildWorkload() (crowdmax.Workload, error) {
	switch *mode {
	case "max":
		if *kRanks != 0 {
			return nil, fmt.Errorf("-k requires -mode topk")
		}
		if *votes != 0 {
			return nil, fmt.Errorf("-votes requires -mode score")
		}
		return crowdmax.MaxFind(), nil
	case "topk":
		if *kRanks < 1 {
			return nil, fmt.Errorf("-mode topk requires -k >= 1")
		}
		if *votes != 0 {
			return nil, fmt.Errorf("-votes requires -mode score")
		}
		return crowdmax.TopKWorkload(*kRanks), nil
	case "score":
		if *kRanks != 0 {
			return nil, fmt.Errorf("-k requires -mode topk")
		}
		if *votes < 0 {
			return nil, fmt.Errorf("-votes must be >= 0")
		}
		return crowdmax.ScoreWorkload(crowdmax.ScoreConfig{Votes: *votes}), nil
	default:
		return nil, fmt.Errorf("unknown mode %q (want max, topk, or score)", *mode)
	}
}

// runSession executes the chosen workload through a crowdmax.Session — the
// entry point that supports checkpointing, resume, and chaos injection.
// Workers use order-independent hash tie-breaking (as with -parallel) so a
// resumed run replays to bit-identical results; all robustness notices go to
// stderr, keeping stdout diffable between an uninterrupted run and a
// crash + resume.
func runSession(ctx context.Context, w crowdmax.Workload, set *crowdmax.Set, deltaN, deltaE float64, unEst int, prices crowdmax.Prices) error {
	schedKind, err := parseSched()
	if err != nil {
		return err
	}
	cfg := crowdmax.Config{
		Naive:     &crowdmax.ThresholdWorker{Delta: deltaN, Tie: crowdmax.HashTie{Seed: *seed}},
		Expert:    &crowdmax.ThresholdWorker{Delta: deltaE, Tie: crowdmax.HashTie{Seed: *seed + 1}},
		Un:        unEst,
		Prices:    prices,
		Rand:      crowdmax.NewRand(*seed),
		Scheduler: schedKind,
	}
	if *budget > 0 {
		cfg.Budget = crowdmax.BudgetLimits{MaxCost: *budget, Prices: prices}
	}
	if *ckPath != "" {
		cfg.Checkpoint = crowdmax.CheckpointConfig{Path: *ckPath, Every: *ckEvery}
		fmt.Fprintf(os.Stderr, "maxcrowd: checkpointing to %s (every %d paid comparisons)\n", *ckPath, *ckEvery)
	}
	if *chaosArg != "" {
		plan, err := crowdmax.ParseChaosPlan(*chaosArg)
		if err != nil {
			return err
		}
		plan.Seed = *seed
		// Hash-of-pair persona randomness keeps fault decisions identical
		// across a crash + resume, like the workers' HashTie.
		plan.PairHash = true
		cfg.Chaos = &plan
	}
	if *degraded {
		cfg.Degrade = &crowdmax.DegradeConfig{}
	}
	if *mode == "score" {
		// Cardinal votes come from a simulated noisy crowd whose error scale
		// matches the naive threshold, mirroring the service's scoring setup.
		cfg.Valuer = crowdmax.NoisyValuer{Sigma: deltaN, Seed: *seed + 2}
	}
	s, err := crowdmax.NewSession(cfg)
	if err != nil {
		return err
	}
	var res crowdmax.Result
	if *resumeCk != "" {
		fmt.Fprintf(os.Stderr, "maxcrowd: resuming from %s\n", *resumeCk)
		res, err = s.ResumeWorkload(ctx, w, *resumeCk, set.Items())
	} else {
		res, err = s.Run(ctx, w, set.Items())
	}
	if err != nil {
		if errors.Is(err, crowdmax.ErrInjectedCrash) {
			fmt.Fprintf(os.Stderr, "maxcrowd: spent before crash: %d naive, %d expert; cost %.2f\n",
				res.NaiveComparisons, res.ExpertComparisons, res.Cost)
			if *ckPath != "" {
				fmt.Fprintf(os.Stderr, "maxcrowd: resume with -resume %s\n", *ckPath)
			}
			return fmt.Errorf("run crashed (injected): %w", err)
		}
		if terr := truncatedResult(err, res); terr != nil {
			return terr
		}
		return err
	}
	switch {
	case len(res.Ranked) > 0:
		fmt.Printf("top %d (best first):\n", len(res.Ranked))
		for i, rr := range res.Ranked {
			fmt.Printf("  %d. %q (value %.4g, true rank %d) — %s (rung %s)\n",
				i+1, label(rr.Item), rr.Item.Value, set.Rank(rr.Item.ID), rr.Guarantee, rr.Rung)
		}
	case len(res.Scores) > 0:
		show := min(len(res.Scores), 5)
		fmt.Printf("top crowd scores (%d elements fully scored):\n", len(res.Scores))
		for i := 0; i < show; i++ {
			sc := res.Scores[i]
			fmt.Printf("  %d. %q (score %.4g, true rank %d)\n",
				i+1, label(sc.Item), sc.Score, set.Rank(sc.Item.ID))
		}
	default:
		fmt.Printf("phase 1 kept %d candidates\n", len(res.Candidates))
	}
	fmt.Printf("returned %q (value %.4g), true rank %d of %d\n",
		label(res.Best), res.Best.Value, set.Rank(res.Best.ID), set.Len())
	fmt.Printf("guarantee: %s (rung %s)\n", res.Guarantee, res.Rung)
	fmt.Printf("comparisons: %d naive, %d expert; cost C(n) = %.0f (cn=1, ce=%g)\n",
		res.NaiveComparisons, res.ExpertComparisons, res.Cost, *ce)
	return nil
}

// truncatedResult is truncated for Session runs, which carry their spend in
// the Result rather than a shared ledger.
func truncatedResult(err error, res crowdmax.Result) error {
	var cause string
	switch {
	case errors.Is(err, crowdmax.ErrBudgetExhausted):
		cause = "budget exhausted"
	case errors.Is(err, context.Canceled):
		cause = "cancelled"
	case errors.Is(err, context.DeadlineExceeded):
		cause = "timed out"
	case errors.Is(err, crowdmax.ErrBackendUnavailable):
		cause = "lost its backend"
	default:
		return nil
	}
	if res.Best.ID != 0 || res.Best.Label != "" {
		fmt.Printf("best so far: %q (value %.4g)\n", label(res.Best), res.Best.Value)
	}
	fmt.Printf("spent before stopping: %d naive, %d expert; cost %.2f\n",
		res.NaiveComparisons, res.ExpertComparisons, res.Cost)
	return fmt.Errorf("run %s: %w", cause, err)
}

// truncated reports a budget-exhausted or cancelled run: the best-so-far
// partial answer plus the true paid costs, as an error so the process exits
// non-zero. It returns nil for errors that are neither.
func truncated(err error, best crowdmax.Item, ledger *crowdmax.Ledger, prices crowdmax.Prices) error {
	var cause string
	switch {
	case errors.Is(err, crowdmax.ErrBudgetExhausted):
		cause = "budget exhausted"
	case errors.Is(err, context.Canceled):
		cause = "cancelled"
	case errors.Is(err, context.DeadlineExceeded):
		cause = "timed out"
	default:
		return nil
	}
	if best.ID != 0 || best.Label != "" {
		fmt.Printf("best so far: %q (value %.4g)\n", label(best), best.Value)
	}
	fmt.Printf("spent before stopping: %d naive, %d expert; cost %.2f\n",
		ledger.Naive(), ledger.Expert(), ledger.Cost(prices))
	return fmt.Errorf("run %s: %w", cause, err)
}

func buildDataset(r *crowdmax.Rand) (*crowdmax.Set, error) {
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return crowdmax.ReadCSV(f)
	}
	switch *data {
	case "uniform":
		return dataset.Uniform(*n, 0, 1, r), nil
	case "cars":
		set, _, err := dataset.Cars(dataset.CarsConfig{}, r)
		return set, err
	case "dots":
		size := *n
		if size > 71 {
			size = 50 // the paper's DOTS grid has 71 points; default to 50
		}
		return dataset.Dots(size), nil
	case "search":
		return dataset.SearchResults(dataset.QueryAsymmetricTSP, min(*n, 100), 0.05, r)
	default:
		return nil, fmt.Errorf("unknown dataset %q", *data)
	}
}

func label(it crowdmax.Item) string {
	if it.Label != "" {
		return it.Label
	}
	return fmt.Sprintf("item-%d", it.ID)
}
