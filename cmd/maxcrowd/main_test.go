package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
)

func captureRun(t *testing.T) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := run(context.Background())
	w.Close()
	os.Stdout = old
	return <-done, errRun
}

func setFlags(t *testing.T, nv int, algoV, dataV string, unV, ueV int, est bool) {
	t.Helper()
	oldN, oldAlgo, oldData, oldUn, oldUe, oldEst := *n, *algo, *data, *un, *ue, *estimat
	*n, *algo, *data, *un, *ue, *estimat = nv, algoV, dataV, unV, ueV, est
	t.Cleanup(func() { *n, *algo, *data, *un, *ue, *estimat = oldN, oldAlgo, oldData, oldUn, oldUe, oldEst })
}

func TestRunAlg1Uniform(t *testing.T) {
	setFlags(t, 300, "alg1", "uniform", 6, 3, false)
	out, err := captureRun(t)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phase 1 kept", "true rank", "cost C(n)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBaselinesAndDatasets(t *testing.T) {
	cases := []struct{ algo, data string }{
		{"2mf-naive", "uniform"},
		{"2mf-expert", "cars"},
		{"randomized", "uniform"},
		{"alg1", "dots"},
		{"alg1", "search"},
	}
	for _, tc := range cases {
		setFlags(t, 200, tc.algo, tc.data, 5, 2, false)
		out, err := captureRun(t)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.algo, tc.data, err)
		}
		if !strings.Contains(out, "returned") {
			t.Fatalf("%s/%s: output missing result line:\n%s", tc.algo, tc.data, out)
		}
	}
}

func TestRunWithEstimation(t *testing.T) {
	setFlags(t, 400, "alg1", "uniform", 8, 3, true)
	out, err := captureRun(t)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Algorithm 4 estimated un=") {
		t.Fatalf("estimation line missing:\n%s", out)
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	setFlags(t, 100, "bogus", "uniform", 5, 2, false)
	if _, err := captureRun(t); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	setFlags(t, 100, "alg1", "bogus", 5, 2, false)
	if _, err := captureRun(t); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunWithCSVInput(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/data.csv"
	csv := "label,value\n"
	for i := 0; i < 60; i++ {
		csv += fmt.Sprintf("thing-%d,%d\n", i, i*10)
	}
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	oldInput := *input
	*input = path
	t.Cleanup(func() { *input = oldInput })
	setFlags(t, 0, "alg1", "uniform", 4, 2, false)
	out, err := captureRun(t)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "thing-59") {
		t.Fatalf("CSV max not reported:\n%s", out)
	}
}

func TestRunTopK(t *testing.T) {
	oldTopK := *topk
	*topk = 4
	t.Cleanup(func() { *topk = oldTopK })
	setFlags(t, 300, "alg1", "uniform", 6, 3, false)
	out, err := captureRun(t)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "top 4 (best first):") {
		t.Fatalf("top-k output missing:\n%s", out)
	}
}

func setRobustFlags(t *testing.T, ck string, every int, resume, chaos string) {
	t.Helper()
	oldCk, oldEvery, oldResume, oldChaos := *ckPath, *ckEvery, *resumeCk, *chaosArg
	*ckPath, *ckEvery, *resumeCk, *chaosArg = ck, every, resume, chaos
	t.Cleanup(func() { *ckPath, *ckEvery, *resumeCk, *chaosArg = oldCk, oldEvery, oldResume, oldChaos })
}

func TestRunCrashAndResumeMatchesCleanRun(t *testing.T) {
	dir := t.TempDir()
	setFlags(t, 300, "alg1", "uniform", 6, 3, false)

	// Uninterrupted checkpointed run: the reference stdout.
	setRobustFlags(t, dir+"/clean.ck", 64, "", "")
	want, err := captureRun(t)
	if err != nil {
		t.Fatal(err)
	}

	// Same run, killed after 200 comparisons by the crash injector.
	path := dir + "/crash.ck"
	setRobustFlags(t, path, 64, "", "crash:200")
	if _, err := captureRun(t); err == nil || !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("crashed run: err = %v, want an injected crash", err)
	}

	// Resume from the snapshot: stdout must be byte-identical to the
	// uninterrupted run.
	setRobustFlags(t, path, 64, path, "")
	got, err := captureRun(t)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got != want {
		t.Fatalf("resumed stdout differs from uninterrupted run:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

func TestRunWithSpammerChaos(t *testing.T) {
	setFlags(t, 200, "alg1", "uniform", 6, 3, false)
	setRobustFlags(t, "", 500, "", "spammer:0.1")
	out, err := captureRun(t)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "returned") {
		t.Fatalf("chaos run produced no result:\n%s", out)
	}
}

func TestRunExpertOutageDegradesToNaiveMajority(t *testing.T) {
	// The acceptance scenario: the expert backend dies for good mid-run.
	// With the degrade controller (on by default) the run must complete
	// without error and report the naive-majority rung's δn guarantee.
	setFlags(t, 300, "alg1", "uniform", 6, 3, false)
	setRobustFlags(t, "", 500, "", "expert-outage:1.0@0+")
	out, err := captureRun(t)
	if err != nil {
		t.Fatalf("expert outage was not absorbed: %v", err)
	}
	if !strings.Contains(out, "guarantee: δn (rung naive-majority)") {
		t.Fatalf("degraded run did not report the δn rung:\n%s", out)
	}

	// With -degrade=false the same outage is a hard failure again.
	old := *degraded
	*degraded = false
	t.Cleanup(func() { *degraded = old })
	if _, err := captureRun(t); err == nil {
		t.Fatal("-degrade=false still absorbed the expert outage")
	}
}

func setModeFlags(t *testing.T, m string, k, v int) {
	t.Helper()
	oldMode, oldK, oldVotes := *mode, *kRanks, *votes
	*mode, *kRanks, *votes = m, k, v
	t.Cleanup(func() { *mode, *kRanks, *votes = oldMode, oldK, oldVotes })
}

func TestRunModeTopK(t *testing.T) {
	setFlags(t, 300, "alg1", "uniform", 6, 3, false)
	setModeFlags(t, "topk", 3, 0)
	out, err := captureRun(t)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"top 3 (best first):", "rung expert-2maxfind", "guarantee: 2δe"} {
		if !strings.Contains(out, want) {
			t.Fatalf("topk output missing %q:\n%s", want, out)
		}
	}
}

func TestRunModeScore(t *testing.T) {
	setFlags(t, 300, "alg1", "uniform", 6, 3, false)
	setModeFlags(t, "score", 0, 5)
	out, err := captureRun(t)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"top crowd scores", "rung score-expert", "guarantee: 2δe@subset"} {
		if !strings.Contains(out, want) {
			t.Fatalf("score output missing %q:\n%s", want, out)
		}
	}
}

func TestRunModeCrashAndResume(t *testing.T) {
	for _, tc := range []struct {
		m        string
		k, votes int
		crash    string
	}{
		{"topk", 3, 0, "crash:200"},
		{"score", 0, 4, "crash:300"},
	} {
		setFlags(t, 300, "alg1", "uniform", 6, 3, false)
		setModeFlags(t, tc.m, tc.k, tc.votes)

		setRobustFlags(t, t.TempDir()+"/clean.ck", 64, "", "")
		want, err := captureRun(t)
		if err != nil {
			t.Fatalf("%s clean: %v", tc.m, err)
		}

		path := t.TempDir() + "/crash.ck"
		setRobustFlags(t, path, 64, "", tc.crash)
		if _, err := captureRun(t); err == nil || !strings.Contains(err.Error(), "crashed") {
			t.Fatalf("%s crashed run: err = %v, want an injected crash", tc.m, err)
		}

		setRobustFlags(t, path, 64, path, "")
		got, err := captureRun(t)
		if err != nil {
			t.Fatalf("%s resume: %v", tc.m, err)
		}
		if got != want {
			t.Fatalf("%s resumed stdout differs:\n--- want ---\n%s--- got ---\n%s", tc.m, want, got)
		}
	}
}

func TestRunModeFlagValidation(t *testing.T) {
	setFlags(t, 100, "alg1", "uniform", 5, 2, false)
	for _, tc := range []struct {
		m        string
		k, votes int
	}{
		{"topk", 0, 0},   // -mode topk needs -k
		{"max", 3, 0},    // -k without -mode topk
		{"max", 0, 5},    // -votes without -mode score
		{"score", 2, 0},  // -k with -mode score
		{"topk", 2, 5},   // -votes with -mode topk
		{"bogus", 0, 0},  // unknown mode
		{"score", 0, -1}, // negative votes
	} {
		setModeFlags(t, tc.m, tc.k, tc.votes)
		if _, err := captureRun(t); err == nil {
			t.Fatalf("mode=%q k=%d votes=%d accepted", tc.m, tc.k, tc.votes)
		}
	}
}

func TestRunRobustFlagsRejectOtherModes(t *testing.T) {
	setFlags(t, 100, "2mf-naive", "uniform", 5, 2, false)
	setRobustFlags(t, t.TempDir()+"/x.ck", 64, "", "")
	if _, err := captureRun(t); err == nil {
		t.Fatal("-checkpoint accepted with a baseline algorithm")
	}
	setFlags(t, 100, "alg1", "uniform", 5, 2, false)
	oldPar := *par
	*par = 2
	t.Cleanup(func() { *par = oldPar })
	if _, err := captureRun(t); err == nil {
		t.Fatal("-checkpoint accepted together with -parallel")
	}
}
