// Command loadgen drives a maxcrowdd service with a deterministic seeded job
// stream and reports client-observed throughput and latency.
//
// It is both the repo's loadtest harness and the HTTP client of the CI smoke
// scripts (no curl/jq needed): it submits -jobs generated-instance jobs
// across -tenants synthetic tenants, retries admissions rejected with
// 429/503 (counting every rejection), polls each accepted job to a terminal
// state, validates that every result's guarantee label is one its rung can
// honestly deliver, and writes a kind:"service" benchmark artifact for
// benchcheck.
//
// With no -server it boots an in-process service on 127.0.0.1:0 and drives
// it over real HTTP, so a single command reproduces the loadtest:
//
//	loadgen -jobs 1000 -out results/BENCH_service.json
//	loadgen -server http://127.0.0.1:8080 -jobs 200
//	loadgen -server http://$(cat addr) -jobs 4 -submit-only
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdmax"
	"crowdmax/internal/checkpoint"
	"crowdmax/internal/service"
)

var (
	server     = flag.String("server", "", "base URL of a running maxcrowdd (empty: boot an in-process server on 127.0.0.1:0)")
	jobs       = flag.Int("jobs", 200, "number of jobs to submit")
	nItems     = flag.Int("n", 100, "instance size per job")
	un         = flag.Int("un", 4, "filter parameter un per job")
	seed       = flag.Uint64("seed", 1, "root seed; job i runs with a seed derived from (seed, i)")
	tenants    = flag.Int("tenants", 4, "spread jobs round-robin over this many synthetic tenants")
	workers    = flag.Int("concurrency", 32, "concurrent client workers")
	submitOnly = flag.Bool("submit-only", false, "submit the jobs and exit without waiting for completion (smoke scripts use this to hold work in flight)")
	waitAll    = flag.Bool("wait-all", false, "submit nothing: poll the server's /healthz until every job it knows is terminal, exit non-zero if any failed (smoke scripts use this after a restart)")
	out        = flag.String("out", "", "write the kind:\"service\" benchmark artifact to this file (atomic)")
	maxConc    = flag.Int("max-concurrent", 8, "in-process server only: session slots")
	cmpLat     = flag.Duration("cmp-latency", 0, "in-process server only: per-comparison latency")
	retryEvery = flag.Duration("retry-every", 25*time.Millisecond, "client backoff between admission retries (the server's Retry-After is whole seconds; a loadtest retries faster but still counts every rejection)")
	timeout    = flag.Duration("timeout", 10*time.Minute, "overall deadline for the run")
	mix        = flag.String("mix", "max", "','-separated workload modes cycled job-by-job across the stream (max, topk, score); anything beyond plain max switches the artifact to kind:\"workloads\" with per-mode stats")
	kFlag      = flag.Int("k", 3, "ranks requested by the topk jobs in the mix")
	votesFlag  = flag.Int("votes", 3, "cardinal votes per element for the score jobs in the mix")

	// Torture-harness flags (scripts/store-torture.sh).
	idsOut      = flag.String("ids-out", "", "append every acknowledged job ID to this file (torture bookkeeping: an acked ID must survive any crash)")
	audit       = flag.Bool("audit", false, "audit a server instead of driving it: every job terminal, every ID in -ids-file accounted for, tenant budgets reconciled against recorded spend (needs -server)")
	idsFile     = flag.String("ids-file", "", "file of acknowledged job IDs (one per line) that -audit checks against the server")
	deadlineSec = flag.Float64("deadline", 0, "deadline_seconds attached to every submitted job (0 = none)")
	faultEvery  = flag.Int("fault-every", 0, "submit every Nth job with fault:\"panic\" (server must run -allow-faults)")
	allowFailed = flag.Bool("allow-failed", false, "-wait-all/-audit: tolerate failed and expired jobs (fault/deadline torture runs)")
	idemKeys    = flag.Bool("idem", false, "attach a deterministic Idempotency-Key to every submission (retries can never double-charge)")
	cePrice     = flag.Float64("ce", 10, "-audit only: the server's expert comparison price, for the monetary reconciliation")
)

// report is the kind:"service" (single-mode) or kind:"workloads" (mixed-mode)
// benchmark artifact schema (cmd/benchcheck validates both).
type report struct {
	Kind          string               `json:"kind"`
	Seed          uint64               `json:"seed"`
	Jobs          int                  `json:"jobs"`
	Completed     int                  `json:"completed"`
	Failed        int                  `json:"failed"`
	Rejected      int64                `json:"rejected"`
	WallSeconds   float64              `json:"wall_seconds"`
	JobsPerSec    float64              `json:"jobs_per_sec"`
	P50LatencyMS  float64              `json:"p50_latency_ms"`
	P99LatencyMS  float64              `json:"p99_latency_ms"`
	N             int                  `json:"n"`
	Un            int                  `json:"un"`
	Concurrency   int                  `json:"concurrency"`
	MaxConcurrent int                  `json:"max_concurrent"`
	Server        string               `json:"server"`
	Mix           string               `json:"mix,omitempty"`
	PerMode       map[string]modeStats `json:"per_mode,omitempty"`
}

// modeStats is one workload's slice of a kind:"workloads" report.
type modeStats struct {
	Jobs         int     `json:"jobs"`
	Completed    int     `json:"completed"`
	Failed       int     `json:"failed"`
	P50LatencyMS float64 `json:"p50_latency_ms"`
	P99LatencyMS float64 `json:"p99_latency_ms"`
}

// jobStatus is the subset of the service's jobView the client reads.
type jobStatus struct {
	State  string `json:"state"`
	Error  string `json:"error"`
	Result *struct {
		Mode      string `json:"mode"`
		Rung      string `json:"rung"`
		Guarantee string `json:"guarantee"`
		Ranked    []struct {
			Rung      string `json:"rung"`
			Guarantee string `json:"guarantee"`
		} `json:"ranked"`
	} `json:"result"`
}

// parseMix validates the -mix flag and returns the per-job mode cycle.
func parseMix() ([]string, error) {
	var modes []string
	for _, m := range strings.Split(*mix, ",") {
		m = strings.TrimSpace(m)
		switch m {
		case "max", "topk", "score":
			modes = append(modes, m)
		default:
			return nil, fmt.Errorf("unknown mode %q in -mix (want max, topk, or score)", m)
		}
	}
	return modes, nil
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	modes, err := parseMix()
	if err != nil {
		return err
	}
	base := *server
	if *waitAll {
		if base == "" {
			return fmt.Errorf("-wait-all needs -server")
		}
		return waitAllJobs(ctx, base)
	}
	if *audit {
		if base == "" {
			return fmt.Errorf("-audit needs -server")
		}
		return auditServer(ctx, base)
	}
	serverLabel := base
	if base == "" {
		stop, url, err := bootInProcess()
		if err != nil {
			return err
		}
		defer stop()
		base, serverLabel = url, "in-process"
	}

	var (
		rejected  atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		failures  []string
		ackedIDs  []string
		latByMode = make(map[string][]time.Duration, len(modes))
		jobByMode = make(map[string]int, len(modes))
		badByMode = make(map[string]int, len(modes))
	)
	client := &http.Client{}
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				m := modes[i%len(modes)]
				lat, id, err := runOne(ctx, client, base, i, m, &rejected)
				mu.Lock()
				jobByMode[m]++
				if id != "" {
					ackedIDs = append(ackedIDs, id)
				}
				if err != nil {
					failures = append(failures, fmt.Sprintf("job %d (%s): %v", i, m, err))
					badByMode[m]++
				} else {
					latencies = append(latencies, lat)
					latByMode[m] = append(latByMode[m], lat)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	if *idsOut != "" && len(ackedIDs) > 0 {
		// Append, not truncate: the torture harness accumulates acked IDs
		// across many kill/restart cycles and audits the union at the end.
		f, err := os.OpenFile(*idsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		sort.Strings(ackedIDs)
		if _, err := f.WriteString(strings.Join(ackedIDs, "\n") + "\n"); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "loadgen:", f)
	}
	completed := len(latencies)
	kind := "service"
	if len(modes) > 1 || modes[0] != "max" {
		kind = "workloads"
	}
	r := report{
		Kind:          kind,
		Seed:          *seed,
		Jobs:          *jobs,
		Completed:     completed,
		Failed:        len(failures),
		Rejected:      rejected.Load(),
		WallSeconds:   wall.Seconds(),
		JobsPerSec:    float64(completed) / wall.Seconds(),
		P50LatencyMS:  quantileMS(latencies, 0.50),
		P99LatencyMS:  quantileMS(latencies, 0.99),
		N:             *nItems,
		Un:            *un,
		Concurrency:   *workers,
		MaxConcurrent: *maxConc,
		Server:        serverLabel,
	}
	var uniq []string
	if kind == "workloads" {
		r.Mix = strings.Join(modes, ",")
		r.PerMode = make(map[string]modeStats, len(modes))
		for _, m := range modes {
			if _, done := r.PerMode[m]; done {
				continue
			}
			uniq = append(uniq, m)
			r.PerMode[m] = modeStats{
				Jobs:         jobByMode[m],
				Completed:    len(latByMode[m]),
				Failed:       badByMode[m],
				P50LatencyMS: quantileMS(latByMode[m], 0.50),
				P99LatencyMS: quantileMS(latByMode[m], 0.99),
			}
		}
	}
	fmt.Printf("loadgen: %d/%d jobs done in %.2fs (%.1f jobs/s, p50 %.1fms, p99 %.1fms, %d rejections retried)\n",
		completed, *jobs, r.WallSeconds, r.JobsPerSec, r.P50LatencyMS, r.P99LatencyMS, r.Rejected)
	for _, m := range uniq {
		s := r.PerMode[m]
		fmt.Printf("loadgen: mode %-5s %d/%d done (p50 %.1fms, p99 %.1fms)\n",
			m, s.Completed, s.Jobs, s.P50LatencyMS, s.P99LatencyMS)
	}
	if *out != "" && !*submitOnly {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := checkpoint.WriteFileAtomic(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("loadgen: wrote %s\n", *out)
	}
	if len(failures) > 0 || completed != *jobs {
		return fmt.Errorf("%d of %d jobs did not complete cleanly", *jobs-completed+len(failures), *jobs)
	}
	return nil
}

// runOne submits job i as workload mode m (retrying admission rejections)
// and, unless -submit-only, polls it to a terminal state and validates the
// result — including per-rank label honesty for topk jobs. The returned
// latency is client-observed: submission retries included. The returned ID
// is the server's acknowledgment — once non-empty, the job must survive any
// later crash.
func runOne(ctx context.Context, client *http.Client, base string, i int, m string, rejected *atomic.Int64) (time.Duration, string, error) {
	spec := map[string]any{
		"tenant": fmt.Sprintf("t%02d", i%max(1, *tenants)),
		"mode":   m,
		"n":      *nItems,
		"un":     *un,
		"seed":   jobSeed(i),
	}
	switch m {
	case "topk":
		spec["k"] = *kFlag
	case "score":
		spec["votes"] = *votesFlag
	}
	if *deadlineSec > 0 {
		spec["deadline_seconds"] = *deadlineSec
	}
	faulted := *faultEvery > 0 && i%*faultEvery == 0
	if faulted {
		spec["fault"] = "panic"
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, "", err
	}
	start := time.Now()

	var statusURL, jobID string
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return 0, "", err
		}
		req.Header.Set("Content-Type", "application/json")
		if *idemKeys {
			req.Header.Set("Idempotency-Key", fmt.Sprintf("lg-%d-%d", *seed, i))
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, "", err
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			rejected.Add(1)
			select {
			case <-time.After(*retryEvery):
				continue
			case <-ctx.Done():
				return 0, "", fmt.Errorf("deadline while retrying admission: %w", ctx.Err())
			}
		}
		// 202 is a fresh admission; 200 is an idempotent replay of one.
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return 0, "", fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, msg)
		}
		var accepted struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&accepted)
		resp.Body.Close()
		if err != nil {
			return 0, "", fmt.Errorf("decode submit response: %w", err)
		}
		statusURL, jobID = base+accepted.Status, accepted.ID
		break
	}
	if *submitOnly {
		return time.Since(start), jobID, nil
	}

	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, statusURL, nil)
		if err != nil {
			return 0, jobID, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, jobID, err
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return 0, jobID, fmt.Errorf("decode status: %w", err)
		}
		switch st.State {
		case "done":
			if st.Result == nil {
				return 0, jobID, fmt.Errorf("done without result")
			}
			if st.Result.Mode != m {
				return 0, jobID, fmt.Errorf("result mode %q, submitted %q", st.Result.Mode, m)
			}
			strongest, ok := crowdmax.StrongestGuaranteeFor(st.Result.Rung)
			if !ok {
				return 0, jobID, fmt.Errorf("unknown rung %q", st.Result.Rung)
			}
			if crowdmax.Guarantee(st.Result.Guarantee).Strength() > strongest.Strength() {
				return 0, jobID, fmt.Errorf("label %q stronger than rung %q allows", st.Result.Guarantee, st.Result.Rung)
			}
			if m == "topk" && len(st.Result.Ranked) != *kFlag {
				return 0, jobID, fmt.Errorf("topk job returned %d ranks, want %d", len(st.Result.Ranked), *kFlag)
			}
			if m != "topk" && len(st.Result.Ranked) != 0 {
				return 0, jobID, fmt.Errorf("%s job returned %d ranks, want none", m, len(st.Result.Ranked))
			}
			for ri, rr := range st.Result.Ranked {
				rs, ok := crowdmax.StrongestGuaranteeFor(rr.Rung)
				if !ok {
					return 0, jobID, fmt.Errorf("rank %d: unknown rung %q", ri+1, rr.Rung)
				}
				if crowdmax.Guarantee(rr.Guarantee).Strength() > rs.Strength() {
					return 0, jobID, fmt.Errorf("rank %d: label %q stronger than rung %q allows", ri+1, rr.Guarantee, rr.Rung)
				}
			}
			return time.Since(start), jobID, nil
		case "expired":
			if *allowFailed || *deadlineSec > 0 {
				return time.Since(start), jobID, nil
			}
			return 0, jobID, fmt.Errorf("job expired: %s", st.Error)
		case "failed":
			if *allowFailed && faulted {
				// An injected panic is supposed to fail; the isolation (the
				// server still answering this poll) is the point.
				return time.Since(start), jobID, nil
			}
			return 0, jobID, fmt.Errorf("job failed: %s", st.Error)
		}
		select {
		case <-time.After(5 * time.Millisecond):
		case <-ctx.Done():
			return 0, jobID, fmt.Errorf("deadline while polling %s (state %q): %w", statusURL, st.State, ctx.Err())
		}
	}
}

// waitAllJobs polls /healthz until no job is queued, running, or interrupted
// (a restarted server re-runs interrupted jobs automatically, so they drain
// to done on their own), then fails if any job ended failed.
func waitAllJobs(ctx context.Context, base string) error {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		var health struct {
			Status string         `json:"status"`
			Jobs   map[string]int `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decode healthz: %w", err)
		}
		if health.Jobs["queued"]+health.Jobs["running"]+health.Jobs["interrupted"] == 0 {
			if f := health.Jobs["failed"]; f > 0 && !*allowFailed {
				return fmt.Errorf("%d jobs failed", f)
			}
			fmt.Printf("loadgen: all jobs settled (%d done, %d expired, %d failed)\n",
				health.Jobs["done"], health.Jobs["expired"], health.Jobs["failed"])
			return nil
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("deadline waiting for jobs to settle (%v): %w", health.Jobs, ctx.Err())
		}
	}
}

// getJSON fetches url and decodes the body into v.
func getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// auditServer is the torture harness's closing argument: after every crash,
// fault window, and restart, the books must balance. It verifies that
//
//  1. every job the server knows is terminal (run -wait-all first);
//  2. every acknowledged ID in -ids-file is either a live job or accounted
//     for by name in the quarantine report — acked work never vanishes;
//  3. per tenant, the budget's recorded spend equals the sum of the
//     terminal results' comparisons — failed (panicked) jobs bill zero —
//     and the monetary spend matches at -ce prices to the cent.
func auditServer(ctx context.Context, base string) error {
	var list struct {
		Jobs []struct {
			ID     string `json:"id"`
			Tenant string `json:"tenant"`
			State  string `json:"state"`
			Result *struct {
				Naive  int64   `json:"naive_comparisons"`
				Expert int64   `json:"expert_comparisons"`
				Cost   float64 `json:"cost"`
			} `json:"result"`
		} `json:"jobs"`
	}
	if err := getJSON(ctx, base+"/v1/jobs", &list); err != nil {
		return err
	}
	var health struct {
		Status      string `json:"status"`
		Quarantined []struct {
			Name string `json:"name"`
		} `json:"quarantined"`
		Dirty int `json:"dirty"`
	}
	if err := getJSON(ctx, base+"/healthz", &health); err != nil {
		return err
	}
	var tens struct {
		Tenants []struct {
			Tenant     string   `json:"tenant"`
			Jobs       int      `json:"jobs"`
			SpentNaive *int64   `json:"spent_naive"`
			SpentExp   *int64   `json:"spent_expert"`
			SpentCost  *float64 `json:"spent_cost"`
		} `json:"tenants"`
	}
	if err := getJSON(ctx, base+"/v1/tenants", &tens); err != nil {
		return err
	}

	var problems []string
	badp := func(format string, args ...any) { problems = append(problems, fmt.Sprintf(format, args...)) }

	known := make(map[string]bool, len(list.Jobs))
	type spend struct {
		naive, expert int64
	}
	byTenant := map[string]spend{}
	for _, j := range list.Jobs {
		known[j.ID] = true
		switch j.State {
		case "done", "failed", "expired":
		default:
			badp("job %s not terminal: %q", j.ID, j.State)
		}
		if j.State == "failed" && !*allowFailed {
			badp("job %s failed", j.ID)
		}
		if j.Result != nil {
			s := byTenant[j.Tenant]
			s.naive += j.Result.Naive
			s.expert += j.Result.Expert
			byTenant[j.Tenant] = s
		}
	}

	if *idsFile != "" {
		data, err := os.ReadFile(*idsFile)
		if err != nil {
			return err
		}
		quarantined := make(map[string]bool, len(health.Quarantined))
		for _, q := range health.Quarantined {
			// Quarantine names look like "jNNNNNNNN.job" (maybe with a
			// collision suffix); index by the leading ID token.
			id, _, _ := strings.Cut(q.Name, ".")
			quarantined[id] = true
		}
		acked := 0
		for _, line := range strings.Split(string(data), "\n") {
			id := strings.TrimSpace(line)
			if id == "" {
				continue
			}
			acked++
			if !known[id] && !quarantined[id] {
				badp("acked job %s lost: neither on the server nor quarantined", id)
			}
		}
		fmt.Printf("loadgen: audit: %d acked IDs checked, %d jobs on server, %d quarantined, %d dirty\n",
			acked, len(list.Jobs), len(health.Quarantined), health.Dirty)
	}

	for _, t := range tens.Tenants {
		if t.Jobs != 0 {
			badp("tenant %s still holds %d unsettled job slots", t.Tenant, t.Jobs)
		}
		if t.SpentNaive == nil {
			continue // unlimited tenant: no budget to reconcile
		}
		want := byTenant[t.Tenant]
		if *t.SpentNaive != want.naive || *t.SpentExp != want.expert {
			badp("tenant %s books off: budget %d naive / %d expert, records sum %d / %d",
				t.Tenant, *t.SpentNaive, *t.SpentExp, want.naive, want.expert)
		}
		wantCost := float64(want.naive) + float64(want.expert)*(*cePrice)
		if diff := *t.SpentCost - wantCost; diff > 0.005 || diff < -0.005 {
			badp("tenant %s cost off by more than a cent: budget %.4f, records %.4f", t.Tenant, *t.SpentCost, wantCost)
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "loadgen: audit:", p)
		}
		return fmt.Errorf("audit found %d problem(s)", len(problems))
	}
	fmt.Printf("loadgen: audit clean: %d jobs, %d tenants reconciled, status %q\n",
		len(list.Jobs), len(tens.Tenants), health.Status)
	return nil
}

// jobSeed derives job i's root seed from the run seed — a fixed odd-constant
// mix, so the stream is reproducible from (-seed, -jobs) alone.
func jobSeed(i int) uint64 {
	return (*seed)*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9 + 1
}

// quantileMS returns the q-quantile of the latencies in milliseconds
// (nearest-rank), 0 for an empty set.
func quantileMS(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// bootInProcess starts a service server over a throwaway state directory and
// a real TCP listener, so the loadtest exercises the same HTTP path as a
// deployed maxcrowdd.
func bootInProcess() (stop func(), url string, err error) {
	dir, err := os.MkdirTemp("", "loadgen-*")
	if err != nil {
		return nil, "", err
	}
	srv, err := service.NewServer(service.Options{
		Dir:           dir,
		MaxConcurrent: *maxConc,
		CmpLatency:    *cmpLat,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck
	stop = func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(drainCtx) //nolint:errcheck
		httpSrv.Close()
		os.RemoveAll(dir)
	}
	return stop, "http://" + ln.Addr().String(), nil
}
