// Command loadgen drives a maxcrowdd service with a deterministic seeded job
// stream and reports client-observed throughput and latency.
//
// It is both the repo's loadtest harness and the HTTP client of the CI smoke
// scripts (no curl/jq needed): it submits -jobs generated-instance jobs
// across -tenants synthetic tenants, retries admissions rejected with
// 429/503 (counting every rejection), polls each accepted job to a terminal
// state, validates that every result's guarantee label is one its rung can
// honestly deliver, and writes a kind:"service" benchmark artifact for
// benchcheck.
//
// With no -server it boots an in-process service on 127.0.0.1:0 and drives
// it over real HTTP, so a single command reproduces the loadtest:
//
//	loadgen -jobs 1000 -out results/BENCH_service.json
//	loadgen -server http://127.0.0.1:8080 -jobs 200
//	loadgen -server http://$(cat addr) -jobs 4 -submit-only
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdmax"
	"crowdmax/internal/checkpoint"
	"crowdmax/internal/service"
)

var (
	server     = flag.String("server", "", "base URL of a running maxcrowdd (empty: boot an in-process server on 127.0.0.1:0)")
	jobs       = flag.Int("jobs", 200, "number of jobs to submit")
	nItems     = flag.Int("n", 100, "instance size per job")
	un         = flag.Int("un", 4, "filter parameter un per job")
	seed       = flag.Uint64("seed", 1, "root seed; job i runs with a seed derived from (seed, i)")
	tenants    = flag.Int("tenants", 4, "spread jobs round-robin over this many synthetic tenants")
	workers    = flag.Int("concurrency", 32, "concurrent client workers")
	submitOnly = flag.Bool("submit-only", false, "submit the jobs and exit without waiting for completion (smoke scripts use this to hold work in flight)")
	waitAll    = flag.Bool("wait-all", false, "submit nothing: poll the server's /healthz until every job it knows is terminal, exit non-zero if any failed (smoke scripts use this after a restart)")
	out        = flag.String("out", "", "write the kind:\"service\" benchmark artifact to this file (atomic)")
	maxConc    = flag.Int("max-concurrent", 8, "in-process server only: session slots")
	cmpLat     = flag.Duration("cmp-latency", 0, "in-process server only: per-comparison latency")
	retryEvery = flag.Duration("retry-every", 25*time.Millisecond, "client backoff between admission retries (the server's Retry-After is whole seconds; a loadtest retries faster but still counts every rejection)")
	timeout    = flag.Duration("timeout", 10*time.Minute, "overall deadline for the run")
	mix        = flag.String("mix", "max", "','-separated workload modes cycled job-by-job across the stream (max, topk, score); anything beyond plain max switches the artifact to kind:\"workloads\" with per-mode stats")
	kFlag      = flag.Int("k", 3, "ranks requested by the topk jobs in the mix")
	votesFlag  = flag.Int("votes", 3, "cardinal votes per element for the score jobs in the mix")
)

// report is the kind:"service" (single-mode) or kind:"workloads" (mixed-mode)
// benchmark artifact schema (cmd/benchcheck validates both).
type report struct {
	Kind          string               `json:"kind"`
	Seed          uint64               `json:"seed"`
	Jobs          int                  `json:"jobs"`
	Completed     int                  `json:"completed"`
	Failed        int                  `json:"failed"`
	Rejected      int64                `json:"rejected"`
	WallSeconds   float64              `json:"wall_seconds"`
	JobsPerSec    float64              `json:"jobs_per_sec"`
	P50LatencyMS  float64              `json:"p50_latency_ms"`
	P99LatencyMS  float64              `json:"p99_latency_ms"`
	N             int                  `json:"n"`
	Un            int                  `json:"un"`
	Concurrency   int                  `json:"concurrency"`
	MaxConcurrent int                  `json:"max_concurrent"`
	Server        string               `json:"server"`
	Mix           string               `json:"mix,omitempty"`
	PerMode       map[string]modeStats `json:"per_mode,omitempty"`
}

// modeStats is one workload's slice of a kind:"workloads" report.
type modeStats struct {
	Jobs         int     `json:"jobs"`
	Completed    int     `json:"completed"`
	Failed       int     `json:"failed"`
	P50LatencyMS float64 `json:"p50_latency_ms"`
	P99LatencyMS float64 `json:"p99_latency_ms"`
}

// jobStatus is the subset of the service's jobView the client reads.
type jobStatus struct {
	State  string `json:"state"`
	Error  string `json:"error"`
	Result *struct {
		Mode      string `json:"mode"`
		Rung      string `json:"rung"`
		Guarantee string `json:"guarantee"`
		Ranked    []struct {
			Rung      string `json:"rung"`
			Guarantee string `json:"guarantee"`
		} `json:"ranked"`
	} `json:"result"`
}

// parseMix validates the -mix flag and returns the per-job mode cycle.
func parseMix() ([]string, error) {
	var modes []string
	for _, m := range strings.Split(*mix, ",") {
		m = strings.TrimSpace(m)
		switch m {
		case "max", "topk", "score":
			modes = append(modes, m)
		default:
			return nil, fmt.Errorf("unknown mode %q in -mix (want max, topk, or score)", m)
		}
	}
	return modes, nil
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	modes, err := parseMix()
	if err != nil {
		return err
	}
	base := *server
	if *waitAll {
		if base == "" {
			return fmt.Errorf("-wait-all needs -server")
		}
		return waitAllJobs(ctx, base)
	}
	serverLabel := base
	if base == "" {
		stop, url, err := bootInProcess()
		if err != nil {
			return err
		}
		defer stop()
		base, serverLabel = url, "in-process"
	}

	var (
		rejected  atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		failures  []string
		latByMode = make(map[string][]time.Duration, len(modes))
		jobByMode = make(map[string]int, len(modes))
		badByMode = make(map[string]int, len(modes))
	)
	client := &http.Client{}
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				m := modes[i%len(modes)]
				lat, err := runOne(ctx, client, base, i, m, &rejected)
				mu.Lock()
				jobByMode[m]++
				if err != nil {
					failures = append(failures, fmt.Sprintf("job %d (%s): %v", i, m, err))
					badByMode[m]++
				} else {
					latencies = append(latencies, lat)
					latByMode[m] = append(latByMode[m], lat)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "loadgen:", f)
	}
	completed := len(latencies)
	kind := "service"
	if len(modes) > 1 || modes[0] != "max" {
		kind = "workloads"
	}
	r := report{
		Kind:          kind,
		Seed:          *seed,
		Jobs:          *jobs,
		Completed:     completed,
		Failed:        len(failures),
		Rejected:      rejected.Load(),
		WallSeconds:   wall.Seconds(),
		JobsPerSec:    float64(completed) / wall.Seconds(),
		P50LatencyMS:  quantileMS(latencies, 0.50),
		P99LatencyMS:  quantileMS(latencies, 0.99),
		N:             *nItems,
		Un:            *un,
		Concurrency:   *workers,
		MaxConcurrent: *maxConc,
		Server:        serverLabel,
	}
	var uniq []string
	if kind == "workloads" {
		r.Mix = strings.Join(modes, ",")
		r.PerMode = make(map[string]modeStats, len(modes))
		for _, m := range modes {
			if _, done := r.PerMode[m]; done {
				continue
			}
			uniq = append(uniq, m)
			r.PerMode[m] = modeStats{
				Jobs:         jobByMode[m],
				Completed:    len(latByMode[m]),
				Failed:       badByMode[m],
				P50LatencyMS: quantileMS(latByMode[m], 0.50),
				P99LatencyMS: quantileMS(latByMode[m], 0.99),
			}
		}
	}
	fmt.Printf("loadgen: %d/%d jobs done in %.2fs (%.1f jobs/s, p50 %.1fms, p99 %.1fms, %d rejections retried)\n",
		completed, *jobs, r.WallSeconds, r.JobsPerSec, r.P50LatencyMS, r.P99LatencyMS, r.Rejected)
	for _, m := range uniq {
		s := r.PerMode[m]
		fmt.Printf("loadgen: mode %-5s %d/%d done (p50 %.1fms, p99 %.1fms)\n",
			m, s.Completed, s.Jobs, s.P50LatencyMS, s.P99LatencyMS)
	}
	if *out != "" && !*submitOnly {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := checkpoint.WriteFileAtomic(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("loadgen: wrote %s\n", *out)
	}
	if len(failures) > 0 || completed != *jobs {
		return fmt.Errorf("%d of %d jobs did not complete cleanly", *jobs-completed+len(failures), *jobs)
	}
	return nil
}

// runOne submits job i as workload mode m (retrying admission rejections)
// and, unless -submit-only, polls it to a terminal state and validates the
// result — including per-rank label honesty for topk jobs. The returned
// latency is client-observed: submission retries included.
func runOne(ctx context.Context, client *http.Client, base string, i int, m string, rejected *atomic.Int64) (time.Duration, error) {
	spec := map[string]any{
		"tenant": fmt.Sprintf("t%02d", i%max(1, *tenants)),
		"mode":   m,
		"n":      *nItems,
		"un":     *un,
		"seed":   jobSeed(i),
	}
	switch m {
	case "topk":
		spec["k"] = *kFlag
	case "score":
		spec["votes"] = *votesFlag
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, err
	}
	start := time.Now()

	var statusURL string
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			rejected.Add(1)
			select {
			case <-time.After(*retryEvery):
				continue
			case <-ctx.Done():
				return 0, fmt.Errorf("deadline while retrying admission: %w", ctx.Err())
			}
		}
		if resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return 0, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, msg)
		}
		var accepted struct {
			Status string `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&accepted)
		resp.Body.Close()
		if err != nil {
			return 0, fmt.Errorf("decode submit response: %w", err)
		}
		statusURL = base + accepted.Status
		break
	}
	if *submitOnly {
		return time.Since(start), nil
	}

	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, statusURL, nil)
		if err != nil {
			return 0, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return 0, fmt.Errorf("decode status: %w", err)
		}
		switch st.State {
		case "done":
			if st.Result == nil {
				return 0, fmt.Errorf("done without result")
			}
			if st.Result.Mode != m {
				return 0, fmt.Errorf("result mode %q, submitted %q", st.Result.Mode, m)
			}
			strongest, ok := crowdmax.StrongestGuaranteeFor(st.Result.Rung)
			if !ok {
				return 0, fmt.Errorf("unknown rung %q", st.Result.Rung)
			}
			if crowdmax.Guarantee(st.Result.Guarantee).Strength() > strongest.Strength() {
				return 0, fmt.Errorf("label %q stronger than rung %q allows", st.Result.Guarantee, st.Result.Rung)
			}
			if m == "topk" && len(st.Result.Ranked) != *kFlag {
				return 0, fmt.Errorf("topk job returned %d ranks, want %d", len(st.Result.Ranked), *kFlag)
			}
			if m != "topk" && len(st.Result.Ranked) != 0 {
				return 0, fmt.Errorf("%s job returned %d ranks, want none", m, len(st.Result.Ranked))
			}
			for ri, rr := range st.Result.Ranked {
				rs, ok := crowdmax.StrongestGuaranteeFor(rr.Rung)
				if !ok {
					return 0, fmt.Errorf("rank %d: unknown rung %q", ri+1, rr.Rung)
				}
				if crowdmax.Guarantee(rr.Guarantee).Strength() > rs.Strength() {
					return 0, fmt.Errorf("rank %d: label %q stronger than rung %q allows", ri+1, rr.Guarantee, rr.Rung)
				}
			}
			return time.Since(start), nil
		case "failed":
			return 0, fmt.Errorf("job failed: %s", st.Error)
		}
		select {
		case <-time.After(5 * time.Millisecond):
		case <-ctx.Done():
			return 0, fmt.Errorf("deadline while polling %s (state %q): %w", statusURL, st.State, ctx.Err())
		}
	}
}

// waitAllJobs polls /healthz until no job is queued, running, or interrupted
// (a restarted server re-runs interrupted jobs automatically, so they drain
// to done on their own), then fails if any job ended failed.
func waitAllJobs(ctx context.Context, base string) error {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		var health struct {
			Status string         `json:"status"`
			Jobs   map[string]int `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decode healthz: %w", err)
		}
		if health.Jobs["queued"]+health.Jobs["running"]+health.Jobs["interrupted"] == 0 {
			if f := health.Jobs["failed"]; f > 0 {
				return fmt.Errorf("%d jobs failed", f)
			}
			fmt.Printf("loadgen: all %d jobs done\n", health.Jobs["done"])
			return nil
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("deadline waiting for jobs to settle (%v): %w", health.Jobs, ctx.Err())
		}
	}
}

// jobSeed derives job i's root seed from the run seed — a fixed odd-constant
// mix, so the stream is reproducible from (-seed, -jobs) alone.
func jobSeed(i int) uint64 {
	return (*seed)*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9 + 1
}

// quantileMS returns the q-quantile of the latencies in milliseconds
// (nearest-rank), 0 for an empty set.
func quantileMS(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// bootInProcess starts a service server over a throwaway state directory and
// a real TCP listener, so the loadtest exercises the same HTTP path as a
// deployed maxcrowdd.
func bootInProcess() (stop func(), url string, err error) {
	dir, err := os.MkdirTemp("", "loadgen-*")
	if err != nil {
		return nil, "", err
	}
	srv, err := service.NewServer(service.Options{
		Dir:           dir,
		MaxConcurrent: *maxConc,
		CmpLatency:    *cmpLat,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck
	stop = func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(drainCtx) //nolint:errcheck
		httpSrv.Close()
		os.RemoveAll(dir)
	}
	return stop, "http://" + ln.Addr().String(), nil
}
