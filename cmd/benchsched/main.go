// Command benchsched produces the scheduler benchmark matrix
// (results/BENCH_sched.json): wall-clock time AND measured logical rounds
// for the lockstep and DAG schedulers across a GOMAXPROCS axis, on the same
// two-phase max-finding workload.
//
// Methodology:
//
//   - Runs are PAIRED: within one repetition the lockstep and DAG runs
//     execute back to back on identical inputs (same seed, same workers), so
//     machine drift hits both sides equally. The headline statistic is the
//     MEDIAN OF PER-REPETITION RATIOS (dag seconds / lockstep seconds) —
//     a paired design that cancels the between-repetition noise a ratio of
//     medians cannot. The run order inside a repetition alternates, one
//     repetition is discarded as warmup, and the heap is collected before
//     every timed run.
//   - Workers use order-independent hash tie-breaking, so both schedulers
//     (and every parallelism width) produce identical answers and paid
//     comparison counts — the harness verifies this every repetition and
//     aborts on any mismatch, making the timing comparison apples-to-apples
//     by construction.
//   - Logical rounds are read off the cost ledger's step counter — the
//     paper's latency measure (one step = one platform batch) — not inferred
//     from wall clock. The DAG scheduler's round win is
//     scheduling-theoretic and shows at every GOMAXPROCS; the wall-clock
//     effect of merging batches grows with cores and per-comparison latency
//     (the -spin knob emulates the latter).
//
// Usage:
//
//	benchsched                     # full matrix -> results/BENCH_sched.json
//	benchsched -smoke              # one cell, small workload (CI gate)
//	benchsched -gomaxprocs 1,4 -runs 7 -n 4000 -spin 2us
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"crowdmax/internal/checkpoint"
	"crowdmax/internal/core"
	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/sched"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"

	"flag"
)

var (
	gmpList = flag.String("gomaxprocs", "1,2,4,8", "comma-separated GOMAXPROCS axis")
	runs    = flag.Int("runs", 5, "paired repetitions per cell (median reported)")
	nItems  = flag.Int("n", 2000, "instance size")
	unEst   = flag.Int("un", 8, "un(n) handed to the filter")
	seeds   = flag.Uint64("seed", 2015, "base seed; repetition i uses seed+i")
	spin    = flag.Duration("spin", 0, "busy-work per paid comparison, emulating worker latency (e.g. 2us)")
	out     = flag.String("out", "results/BENCH_sched.json", "output path")
	smoke   = flag.Bool("smoke", false, "CI smoke: one cell (GOMAXPROCS=1), 3 runs, n=400")
	prof    = flag.String("cpuprofile", "", "write a CPU profile covering all timed runs")
)

// cell is one (gomaxprocs, scheduler) measurement.
type cell struct {
	Gomaxprocs      int       `json:"gomaxprocs"`
	Scheduler       string    `json:"scheduler"`
	MedianSeconds   float64   `json:"median_seconds"`
	RunsSeconds     []float64 `json:"runs_seconds"`
	LogicalRounds   int64     `json:"logical_rounds"`
	PaidComparisons int64     `json:"paid_comparisons"`
	BestID          int       `json:"best_id"`
}

// paired is the per-GOMAXPROCS paired comparison: the median over
// repetitions of (dag seconds / lockstep seconds), plus the rounds both
// schedulers measured. This — not the ratio of the two cell medians — is the
// statistic the ±2% one-core acceptance gate reads, because pairing cancels
// between-repetition machine drift.
type paired struct {
	Gomaxprocs     int     `json:"gomaxprocs"`
	RatioMedian    float64 `json:"dag_over_lockstep_median"`
	RoundsLockstep int64   `json:"rounds_lockstep"`
	RoundsDAG      int64   `json:"rounds_dag"`
}

// report is the BENCH_sched.json schema; benchcheck validates it via the
// kind tag.
type report struct {
	Kind     string   `json:"kind"` // "sched-matrix"
	Cores    int      `json:"cores"`
	GoVer    string   `json:"go_version"`
	Smoke    bool     `json:"smoke"`
	N        int      `json:"n"`
	Un       int      `json:"un"`
	Runs     int      `json:"runs"`
	SpinNs   int64    `json:"spin_ns"`
	Cells    []cell   `json:"cells"`
	Paired   []paired `json:"paired"`
	Produced string   `json:"produced_by"`
}

// spinWorker wraps a comparator with fixed busy-work per call, emulating
// worker latency without sleeping (sleep granularity would swamp the
// measurement). It preserves the wrapped comparator's order-independence.
type spinWorker struct {
	inner worker.Comparator
	loops int
}

func (s *spinWorker) Compare(a, b item.Item) item.Item {
	x := uint64(a.ID)*0x9e3779b97f4a7c15 + uint64(b.ID)
	for i := 0; i < s.loops; i++ {
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
	}
	if x == 0 { // never true; defeats dead-code elimination
		return item.Item{}
	}
	return s.inner.Compare(a, b)
}

// calibrateSpinLoops converts the -spin duration into busy-loop iterations.
func calibrateSpinLoops(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	const probe = 1 << 20
	w := &spinWorker{inner: worker.Truth, loops: probe}
	a, b := item.Item{ID: 1, Value: 1}, item.Item{ID: 2, Value: 2}
	start := time.Now()
	w.Compare(a, b)
	perLoop := time.Since(start) / probe
	if perLoop <= 0 {
		perLoop = 1
	}
	loops := int(d / perLoop)
	if loops < 1 {
		loops = 1
	}
	return loops
}

// outcome is one run's verification fingerprint.
type outcome struct {
	bestID  int
	paid    int64
	rounds  int64
	elapsed time.Duration
}

// runOnce executes one two-phase run under the given scheduler and
// parallelism width on a freshly generated instance.
func runOnce(seed uint64, kind sched.Kind, par, spinLoops int) (outcome, error) {
	r := rng.New(seed)
	cal, err := dataset.UniformCalibrated(*nItems, *unEst, 3, r.Child("data"))
	if err != nil {
		return outcome{}, err
	}
	deltaE, err := cal.Set.DeltaForU(3)
	if err != nil {
		return outcome{}, err
	}
	// Order-independent workers: identical answers at every width and
	// under both schedulers.
	var nw worker.Comparator = &worker.Threshold{Delta: cal.DeltaN, Tie: worker.HashTie{Seed: seed}}
	var ew worker.Comparator = &worker.Threshold{Delta: deltaE, Tie: worker.HashTie{Seed: seed + 1}}
	if spinLoops > 0 {
		nw = &spinWorker{inner: nw, loops: spinLoops}
		ew = &spinWorker{inner: ew, loops: spinLoops}
	}
	ledger := cost.NewLedger()
	no := tournament.NewOracle(nw, worker.Naive, ledger, tournament.NewMemo())
	eo := tournament.NewOracle(ew, worker.Expert, ledger, tournament.NewMemo())
	if par > 1 {
		no.ParallelBatch(par)
		eo.ParallelBatch(par)
	}
	start := time.Now()
	res, err := core.FindMax(context.Background(), cal.Set.Items(), no, eo, core.FindMaxOptions{
		Un:        *unEst,
		Scheduler: kind,
	})
	elapsed := time.Since(start)
	if err != nil {
		return outcome{}, err
	}
	return outcome{
		bestID:  res.Best.ID,
		paid:    ledger.Naive() + ledger.Expert(),
		rounds:  ledger.Steps(),
		elapsed: elapsed,
	}, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsched:", err)
		os.Exit(1)
	}
}

func run() error {
	axis := []int{}
	for _, f := range strings.Split(*gmpList, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return fmt.Errorf("bad -gomaxprocs entry %q", f)
		}
		axis = append(axis, p)
	}
	if *smoke {
		axis = []int{1}
		*runs = 3
		if *nItems > 400 {
			*nItems = 400
		}
	}
	spinLoops := calibrateSpinLoops(*spin)
	kinds := []sched.Kind{sched.Lockstep, sched.DAG}
	if *prof != "" {
		pf, err := os.Create(*prof)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep := report{
		Kind:     "sched-matrix",
		Cores:    runtime.NumCPU(),
		GoVer:    runtime.Version(),
		Smoke:    *smoke,
		N:        *nItems,
		Un:       *unEst,
		Runs:     *runs,
		SpinNs:   spin.Nanoseconds(),
		Produced: "cmd/benchsched",
	}

	prevGMP := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevGMP)

	for _, p := range axis {
		runtime.GOMAXPROCS(p)
		secs := map[sched.Kind][]float64{}
		var ratios []float64
		var ref [2]outcome // last outcome per kind, for cross-checking
		// Repetition -1 is an untimed warmup (page faults, branch caches,
		// lazy runtime setup land there, not in a measured cell).
		for i := -1; i < *runs; i++ {
			seed := *seeds + uint64(i+1)
			order := kinds
			if i%2 != 0 { // alternate to cancel in-repetition ordering bias
				order = []sched.Kind{sched.DAG, sched.Lockstep}
			}
			for _, kind := range order {
				runtime.GC() // earlier runs' garbage must not bill this one
				o, err := runOnce(seed, kind, p, spinLoops)
				if err != nil {
					return fmt.Errorf("gomaxprocs=%d %s run %d: %w", p, kind, i, err)
				}
				if i >= 0 {
					secs[kind] = append(secs[kind], o.elapsed.Seconds())
				}
				ref[kind] = o
			}
			// Determinism gate: the schedulers must agree on the answer and
			// the paid count every repetition; a divergence voids the
			// comparison and the whole report.
			if ref[sched.Lockstep].bestID != ref[sched.DAG].bestID ||
				ref[sched.Lockstep].paid != ref[sched.DAG].paid {
				return fmt.Errorf("gomaxprocs=%d seed %d: schedulers diverged (best %d/%d, paid %d/%d)",
					p, seed, ref[sched.Lockstep].bestID, ref[sched.DAG].bestID,
					ref[sched.Lockstep].paid, ref[sched.DAG].paid)
			}
			if i >= 0 {
				ratios = append(ratios, ref[sched.DAG].elapsed.Seconds()/ref[sched.Lockstep].elapsed.Seconds())
			}
		}
		for _, kind := range kinds {
			rep.Cells = append(rep.Cells, cell{
				Gomaxprocs:      p,
				Scheduler:       kind.String(),
				MedianSeconds:   median(secs[kind]),
				RunsSeconds:     secs[kind],
				LogicalRounds:   ref[kind].rounds,
				PaidComparisons: ref[kind].paid,
				BestID:          ref[kind].bestID,
			})
		}
		rep.Paired = append(rep.Paired, paired{
			Gomaxprocs:     p,
			RatioMedian:    median(ratios),
			RoundsLockstep: ref[sched.Lockstep].rounds,
			RoundsDAG:      ref[sched.DAG].rounds,
		})
		lock, dag := rep.Cells[len(rep.Cells)-2], rep.Cells[len(rep.Cells)-1]
		fmt.Printf("GOMAXPROCS=%d  lockstep %7.1f ms / %4d rounds   dag %7.1f ms / %4d rounds   (%.2fx rounds, paired wall %+.1f%%)\n",
			p, lock.MedianSeconds*1e3, lock.LogicalRounds, dag.MedianSeconds*1e3, dag.LogicalRounds,
			float64(lock.LogicalRounds)/float64(max(dag.LogicalRounds, 1)),
			100*(median(ratios)-1))
	}
	runtime.GOMAXPROCS(prevGMP)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := checkpoint.WriteFileAtomic(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
