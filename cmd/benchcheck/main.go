// Command benchcheck validates a timing report written by benchrun -benchout:
// the file must parse as JSON and carry the expected schema (machine fields
// plus one complete timing entry per experiment). It is CI's schema gate for
// the benchmark-smoke job — it checks shape, never performance, so it cannot
// flake on loaded runners.
//
// Usage:
//
//	benchcheck results/BENCH.json [more.json ...]
//
// Exits 0 if every file is valid, 1 otherwise with one line per problem.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type report struct {
	Cores       int       `json:"cores"`
	Gomaxprocs  int       `json:"gomaxprocs"`
	Workers     int       `json:"workers"`
	Experiments []expTime `json:"experiments"`
}

type expTime struct {
	Name       string   `json:"name"`
	SeqSeconds *float64 `json:"seq_seconds"`
	ParSeconds *float64 `json:"par_seconds"`
	Speedup    *float64 `json:"speedup"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck <report.json> [more.json ...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		if errs := checkFile(path); len(errs) != 0 {
			bad = true
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, e)
			}
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}

func checkFile(path string) []error {
	data, err := os.ReadFile(path)
	if err != nil {
		return []error{err}
	}
	return check(data)
}

func check(data []byte) []error {
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return []error{fmt.Errorf("not valid JSON: %w", err)}
	}
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if r.Cores < 1 {
		fail("cores = %d, want >= 1", r.Cores)
	}
	if r.Gomaxprocs < 1 {
		fail("gomaxprocs = %d, want >= 1", r.Gomaxprocs)
	}
	if r.Workers < 1 {
		fail("workers = %d, want >= 1", r.Workers)
	}
	if len(r.Experiments) == 0 {
		fail("no experiments")
	}
	for i, e := range r.Experiments {
		if e.Name == "" {
			fail("experiment %d: missing name", i)
		}
		for _, f := range []struct {
			key string
			val *float64
		}{
			{"seq_seconds", e.SeqSeconds},
			{"par_seconds", e.ParSeconds},
			{"speedup", e.Speedup},
		} {
			if f.val == nil {
				fail("experiment %d (%s): missing %s", i, e.Name, f.key)
			} else if *f.val < 0 {
				fail("experiment %d (%s): %s = %g, want >= 0", i, e.Name, f.key, *f.val)
			}
		}
	}
	return errs
}
