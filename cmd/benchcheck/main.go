// Command benchcheck validates the repository's benchmark artifacts. Five
// schemas are recognized, dispatched on the optional top-level "kind" field:
//
//   - legacy timing reports written by benchrun -benchout (no kind field):
//     machine fields plus one complete timing entry per experiment;
//   - "sched-matrix" reports written by benchsched (BENCH_sched.json): a
//     GOMAXPROCS × {lockstep, dag} cell matrix that must cover the 1-core
//     baseline, pair both schedulers at every width, agree on paid
//     comparison counts within a pair, never measure MORE logical rounds
//     for the DAG scheduler than for lockstep, and carry a paired
//     per-repetition wall-clock median. The paired 1-core median may not
//     show the DAG scheduler more than 2% slower than lockstep (full runs;
//     smoke runs get a loose sanity window because their workloads are
//     tiny) — that is the one performance claim the artifact exists to
//     make, so its absence is a schema error.
//   - "service" loadtest reports written by cmd/loadgen
//     (BENCH_service.json): client-observed throughput and latency for a
//     seeded job stream against maxcrowdd. Every submitted job must have
//     completed, the rejection count and seed must be present (the run is
//     not reproducible without them), and the latency quantiles must be
//     ordered (p50 ≤ p99).
//   - "workloads" mixed-workload loadtest reports written by cmd/loadgen -mix
//     (BENCH_workloads.json): the service schema plus a mode mix and per-mode
//     stats that must cover every mode in the mix, partition the job stream
//     exactly, and carry ordered per-mode latency quantiles.
//   - "trust" scorer-sweep reports written by benchrun -trust-out
//     (BENCH_trust.json): retention and mean cost for the gold, graph, and
//     hybrid scorer arms per adversary mix. The sweep must be certified
//     deterministic and must demonstrate the artifact's one claim: at some
//     colluder-clique mix the gold arm's retention collapses (≤ 90%) while
//     the graph or hybrid arm sustains ≥ 95%.
//
// It is CI's schema gate for the benchmark-smoke and loadtest-smoke jobs —
// beyond the paired 1-core bound it checks shape, not speed, so it cannot
// flake on loaded runners.
//
// Usage:
//
//	benchcheck results/BENCH.json [more.json ...]
//
// Exits 0 if every file is valid, 1 otherwise with one line per problem.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type report struct {
	Cores       int       `json:"cores"`
	Gomaxprocs  int       `json:"gomaxprocs"`
	Workers     int       `json:"workers"`
	Experiments []expTime `json:"experiments"`
}

type expTime struct {
	Name       string   `json:"name"`
	SeqSeconds *float64 `json:"seq_seconds"`
	ParSeconds *float64 `json:"par_seconds"`
	Speedup    *float64 `json:"speedup"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck <report.json> [more.json ...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		if errs := checkFile(path); len(errs) != 0 {
			bad = true
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, e)
			}
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}

func checkFile(path string) []error {
	data, err := os.ReadFile(path)
	if err != nil {
		return []error{err}
	}
	return check(data)
}

func check(data []byte) []error {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return []error{fmt.Errorf("not valid JSON: %w", err)}
	}
	switch probe.Kind {
	case "":
		return checkLegacy(data)
	case "sched-matrix":
		return checkSchedMatrix(data)
	case "service":
		return checkService(data)
	case "workloads":
		return checkWorkloads(data)
	case "trust":
		return checkTrust(data)
	default:
		return []error{fmt.Errorf("unknown report kind %q", probe.Kind)}
	}
}

func checkLegacy(data []byte) []error {
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return []error{fmt.Errorf("not valid JSON: %w", err)}
	}
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if r.Cores < 1 {
		fail("cores = %d, want >= 1", r.Cores)
	}
	if r.Gomaxprocs < 1 {
		fail("gomaxprocs = %d, want >= 1", r.Gomaxprocs)
	}
	if r.Workers < 1 {
		fail("workers = %d, want >= 1", r.Workers)
	}
	if len(r.Experiments) == 0 {
		fail("no experiments")
	}
	for i, e := range r.Experiments {
		if e.Name == "" {
			fail("experiment %d: missing name", i)
		}
		for _, f := range []struct {
			key string
			val *float64
		}{
			{"seq_seconds", e.SeqSeconds},
			{"par_seconds", e.ParSeconds},
			{"speedup", e.Speedup},
		} {
			if f.val == nil {
				fail("experiment %d (%s): missing %s", i, e.Name, f.key)
			} else if *f.val < 0 {
				fail("experiment %d (%s): %s = %g, want >= 0", i, e.Name, f.key, *f.val)
			}
		}
	}
	return errs
}

// schedReport mirrors cmd/benchsched's output schema.
type schedReport struct {
	Cores  int         `json:"cores"`
	Smoke  bool        `json:"smoke"`
	N      int         `json:"n"`
	Runs   int         `json:"runs"`
	Cells  []schedCell `json:"cells"`
	Paired []schedPair `json:"paired"`
}

type schedCell struct {
	Gomaxprocs      int       `json:"gomaxprocs"`
	Scheduler       string    `json:"scheduler"`
	MedianSeconds   float64   `json:"median_seconds"`
	RunsSeconds     []float64 `json:"runs_seconds"`
	LogicalRounds   int64     `json:"logical_rounds"`
	PaidComparisons int64     `json:"paid_comparisons"`
}

type schedPair struct {
	Gomaxprocs     int     `json:"gomaxprocs"`
	RatioMedian    float64 `json:"dag_over_lockstep_median"`
	RoundsLockstep int64   `json:"rounds_lockstep"`
	RoundsDAG      int64   `json:"rounds_dag"`
}

// oneCoreSlowdownCap bounds the paired 1-core wall-clock median: the DAG
// scheduler asks the identical comparison sequence, so any slowdown is pure
// dispatch overhead — more than 2% of it fails the artifact. Smoke runs
// measure millisecond workloads where scheduling noise alone exceeds that,
// so they only get a gross sanity window.
const (
	oneCoreSlowdownCap      = 1.02
	oneCoreSmokeSlowdownCap = 2.0
)

func checkSchedMatrix(data []byte) []error {
	var r schedReport
	if err := json.Unmarshal(data, &r); err != nil {
		return []error{fmt.Errorf("not valid JSON: %w", err)}
	}
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if r.Cores < 1 {
		fail("cores = %d, want >= 1", r.Cores)
	}
	if r.N < 2 {
		fail("n = %d, want >= 2", r.N)
	}
	if r.Runs < 1 {
		fail("runs = %d, want >= 1", r.Runs)
	}
	if len(r.Cells) == 0 {
		fail("no cells")
	}
	// byGMP[gomaxprocs][scheduler] — every width must carry exactly one
	// cell per scheduler, and the pair must agree on the paid count.
	byGMP := map[int]map[string]schedCell{}
	for i, c := range r.Cells {
		if c.Gomaxprocs < 1 {
			fail("cell %d: gomaxprocs = %d, want >= 1", i, c.Gomaxprocs)
		}
		if c.Scheduler != "lockstep" && c.Scheduler != "dag" {
			fail("cell %d: unknown scheduler %q", i, c.Scheduler)
			continue
		}
		if c.MedianSeconds <= 0 {
			fail("cell %d (%s@%d): median_seconds = %g, want > 0", i, c.Scheduler, c.Gomaxprocs, c.MedianSeconds)
		}
		if len(c.RunsSeconds) != r.Runs {
			fail("cell %d (%s@%d): %d runs_seconds, want %d", i, c.Scheduler, c.Gomaxprocs, len(c.RunsSeconds), r.Runs)
		}
		if c.LogicalRounds < 1 {
			fail("cell %d (%s@%d): logical_rounds = %d, want >= 1", i, c.Scheduler, c.Gomaxprocs, c.LogicalRounds)
		}
		if c.PaidComparisons < 1 {
			fail("cell %d (%s@%d): paid_comparisons = %d, want >= 1", i, c.Scheduler, c.Gomaxprocs, c.PaidComparisons)
		}
		if byGMP[c.Gomaxprocs] == nil {
			byGMP[c.Gomaxprocs] = map[string]schedCell{}
		}
		if _, dup := byGMP[c.Gomaxprocs][c.Scheduler]; dup {
			fail("cell %d: duplicate %s cell for gomaxprocs %d", i, c.Scheduler, c.Gomaxprocs)
		}
		byGMP[c.Gomaxprocs][c.Scheduler] = c
	}
	if _, ok := byGMP[1]; len(r.Cells) > 0 && !ok {
		fail("matrix lacks the gomaxprocs=1 baseline")
	}
	for gmp, pair := range byGMP {
		lock, hasLock := pair["lockstep"]
		dag, hasDAG := pair["dag"]
		if !hasLock || !hasDAG {
			fail("gomaxprocs %d: missing %s cell", gmp, missingOf(hasLock, hasDAG))
			continue
		}
		if lock.PaidComparisons != dag.PaidComparisons {
			fail("gomaxprocs %d: paid comparisons diverge (lockstep %d, dag %d)", gmp, lock.PaidComparisons, dag.PaidComparisons)
		}
		if dag.LogicalRounds > lock.LogicalRounds {
			fail("gomaxprocs %d: dag measured MORE rounds than lockstep (%d > %d)", gmp, dag.LogicalRounds, lock.LogicalRounds)
		}
	}
	seenPair := map[int]bool{}
	for i, p := range r.Paired {
		if seenPair[p.Gomaxprocs] {
			fail("paired %d: duplicate entry for gomaxprocs %d", i, p.Gomaxprocs)
		}
		seenPair[p.Gomaxprocs] = true
		cells, ok := byGMP[p.Gomaxprocs]
		if !ok {
			fail("paired %d: gomaxprocs %d has no cells", i, p.Gomaxprocs)
			continue
		}
		if p.RatioMedian <= 0 {
			fail("paired %d (gomaxprocs %d): dag_over_lockstep_median = %g, want > 0", i, p.Gomaxprocs, p.RatioMedian)
		}
		if lock, ok := cells["lockstep"]; ok && p.RoundsLockstep != lock.LogicalRounds {
			fail("paired %d (gomaxprocs %d): rounds_lockstep %d != cell %d", i, p.Gomaxprocs, p.RoundsLockstep, lock.LogicalRounds)
		}
		if dag, ok := cells["dag"]; ok && p.RoundsDAG != dag.LogicalRounds {
			fail("paired %d (gomaxprocs %d): rounds_dag %d != cell %d", i, p.Gomaxprocs, p.RoundsDAG, dag.LogicalRounds)
		}
		if p.Gomaxprocs == 1 {
			bound := oneCoreSlowdownCap
			if r.Smoke {
				bound = oneCoreSmokeSlowdownCap
			}
			if p.RatioMedian > bound {
				fail("paired 1-core median shows dag %.1f%% slower than lockstep, cap is %.0f%%",
					100*(p.RatioMedian-1), 100*(bound-1))
			}
		}
	}
	for gmp := range byGMP {
		if !seenPair[gmp] {
			fail("gomaxprocs %d: missing paired summary", gmp)
		}
	}
	return errs
}

// serviceReport mirrors cmd/loadgen's output schema — both the kind:"service"
// single-mode shape and the kind:"workloads" mixed-mode extension. Required
// numerics are pointers so "missing" and "zero" stay distinguishable.
type serviceReport struct {
	Seed          *uint64              `json:"seed"`
	Jobs          int                  `json:"jobs"`
	Completed     *int                 `json:"completed"`
	Failed        *int                 `json:"failed"`
	Rejected      *int64               `json:"rejected"`
	WallSeconds   *float64             `json:"wall_seconds"`
	JobsPerSec    *float64             `json:"jobs_per_sec"`
	P50LatencyMS  *float64             `json:"p50_latency_ms"`
	P99LatencyMS  *float64             `json:"p99_latency_ms"`
	N             int                  `json:"n"`
	Un            int                  `json:"un"`
	Concurrency   int                  `json:"concurrency"`
	MaxConcurrent int                  `json:"max_concurrent"`
	Server        string               `json:"server"`
	Mix           string               `json:"mix"`
	PerMode       map[string]modeStats `json:"per_mode"`
}

type modeStats struct {
	Jobs         int      `json:"jobs"`
	Completed    *int     `json:"completed"`
	Failed       *int     `json:"failed"`
	P50LatencyMS *float64 `json:"p50_latency_ms"`
	P99LatencyMS *float64 `json:"p99_latency_ms"`
}

func checkService(data []byte) []error {
	var r serviceReport
	if err := json.Unmarshal(data, &r); err != nil {
		return []error{fmt.Errorf("not valid JSON: %w", err)}
	}
	return checkServiceBase(&r)
}

func checkServiceBase(r *serviceReport) []error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if r.Jobs < 1 {
		fail("jobs = %d, want >= 1", r.Jobs)
	}
	if r.Seed == nil {
		fail("missing seed (the run is not reproducible without it)")
	}
	for _, f := range []struct {
		key string
		set bool
	}{
		{"completed", r.Completed != nil},
		{"failed", r.Failed != nil},
		{"rejected", r.Rejected != nil},
		{"wall_seconds", r.WallSeconds != nil},
		{"jobs_per_sec", r.JobsPerSec != nil},
		{"p50_latency_ms", r.P50LatencyMS != nil},
		{"p99_latency_ms", r.P99LatencyMS != nil},
	} {
		if !f.set {
			fail("missing %s", f.key)
		}
	}
	if len(errs) != 0 {
		return errs
	}
	// Every submitted job completed: a loadtest that lost work is not a
	// benchmark, it is an incident report.
	if *r.Completed != r.Jobs {
		fail("completed = %d of %d jobs", *r.Completed, r.Jobs)
	}
	if *r.Failed != 0 {
		fail("failed = %d, want 0", *r.Failed)
	}
	if *r.Rejected < 0 {
		fail("rejected = %d, want >= 0", *r.Rejected)
	}
	if *r.WallSeconds <= 0 {
		fail("wall_seconds = %g, want > 0", *r.WallSeconds)
	}
	if *r.JobsPerSec <= 0 {
		fail("jobs_per_sec = %g, want > 0", *r.JobsPerSec)
	}
	if *r.P50LatencyMS <= 0 || *r.P99LatencyMS <= 0 {
		fail("latency quantiles (p50 %g, p99 %g) must be > 0", *r.P50LatencyMS, *r.P99LatencyMS)
	}
	if *r.P50LatencyMS > *r.P99LatencyMS {
		fail("p50 latency %g exceeds p99 %g", *r.P50LatencyMS, *r.P99LatencyMS)
	}
	if r.N < 2 {
		fail("n = %d, want >= 2", r.N)
	}
	if r.Un < 1 {
		fail("un = %d, want >= 1", r.Un)
	}
	if r.Concurrency < 1 {
		fail("concurrency = %d, want >= 1", r.Concurrency)
	}
	if r.MaxConcurrent < 1 {
		fail("max_concurrent = %d, want >= 1", r.MaxConcurrent)
	}
	if r.Server == "" {
		fail("missing server")
	}
	return errs
}

// checkWorkloads validates the mixed-workload loadtest artifact: everything
// the kind:"service" schema demands, plus a mode mix and per-mode stats that
// cover every mode in the mix, partition the job stream exactly, and carry
// ordered latency quantiles of their own — so a mode silently dropped from
// the loadtest (or one whose jobs all failed) is a schema error, not a gap.
func checkWorkloads(data []byte) []error {
	var r serviceReport
	if err := json.Unmarshal(data, &r); err != nil {
		return []error{fmt.Errorf("not valid JSON: %w", err)}
	}
	errs := checkServiceBase(&r)
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if r.Mix == "" {
		fail("missing mix")
		return errs
	}
	if len(r.PerMode) == 0 {
		fail("missing per_mode")
		return errs
	}
	inMix := map[string]bool{}
	for _, m := range strings.Split(r.Mix, ",") {
		m = strings.TrimSpace(m)
		if m != "max" && m != "topk" && m != "score" {
			fail("mix names unknown mode %q", m)
			continue
		}
		inMix[m] = true
	}
	for m := range inMix {
		if _, ok := r.PerMode[m]; !ok {
			fail("mode %s is in the mix but has no per_mode entry", m)
		}
	}
	var sumJobs, sumDone, sumFailed int
	for m, s := range r.PerMode {
		if !inMix[m] {
			fail("per_mode names mode %q outside the mix %q", m, r.Mix)
			continue
		}
		if s.Completed == nil || s.Failed == nil || s.P50LatencyMS == nil || s.P99LatencyMS == nil {
			fail("mode %s: missing completed/failed/latency fields", m)
			continue
		}
		if s.Jobs < 1 {
			fail("mode %s: jobs = %d, want >= 1", m, s.Jobs)
		}
		if *s.Completed != s.Jobs {
			fail("mode %s: completed = %d of %d jobs", m, *s.Completed, s.Jobs)
		}
		if *s.Failed != 0 {
			fail("mode %s: failed = %d, want 0", m, *s.Failed)
		}
		if *s.Completed > 0 && (*s.P50LatencyMS <= 0 || *s.P99LatencyMS <= 0) {
			fail("mode %s: latency quantiles (p50 %g, p99 %g) must be > 0", m, *s.P50LatencyMS, *s.P99LatencyMS)
		}
		if *s.P50LatencyMS > *s.P99LatencyMS {
			fail("mode %s: p50 latency %g exceeds p99 %g", m, *s.P50LatencyMS, *s.P99LatencyMS)
		}
		sumJobs += s.Jobs
		sumDone += *s.Completed
		sumFailed += *s.Failed
	}
	if sumJobs != r.Jobs {
		fail("per_mode jobs sum to %d, report has %d", sumJobs, r.Jobs)
	}
	if r.Completed != nil && sumDone != *r.Completed {
		fail("per_mode completed sum to %d, report has %d", sumDone, *r.Completed)
	}
	if r.Failed != nil && sumFailed != *r.Failed {
		fail("per_mode failed sum to %d, report has %d", sumFailed, *r.Failed)
	}
	return errs
}

func missingOf(hasLock, hasDAG bool) string {
	switch {
	case !hasLock && !hasDAG:
		return "lockstep and dag"
	case !hasLock:
		return "lockstep"
	default:
		return "dag"
	}
}

// trustReport mirrors experiment.TrustReport. Required numerics are pointers
// so "missing" and "zero" stay distinguishable.
type trustReport struct {
	Seed          *uint64     `json:"seed"`
	N             int         `json:"n"`
	Un            int         `json:"un"`
	Ue            int         `json:"ue"`
	PoolSize      int         `json:"pool_size"`
	Trials        int         `json:"trials"`
	Warmup        *int        `json:"warmup"`
	Mixes         []trustCell `json:"mixes"`
	Deterministic *bool       `json:"deterministic"`
	Hash          string      `json:"hash"`
}

type trustCell struct {
	Spammers  *int                     `json:"spammers"`
	Colluders *int                     `json:"colluders"`
	Arms      map[string]trustArmStats `json:"arms"`
}

type trustArmStats struct {
	RetentionPct *float64 `json:"retention_pct"`
	MeanCost     *float64 `json:"mean_cost"`
}

// trustArms is the arm set every mix must report — keep in sync with
// experiment.TrustArms.
var trustArms = []string{"gold", "graph", "hybrid"}

// checkTrust validates the scorer-sweep artifact: complete shape, sane
// ranges, a certified-deterministic double run, and the collapse claim the
// file exists to make — some colluder mix where gold retention is ≤ 90%
// while the graph or hybrid arm holds ≥ 95%.
func checkTrust(data []byte) []error {
	var r trustReport
	if err := json.Unmarshal(data, &r); err != nil {
		return []error{fmt.Errorf("not valid JSON: %w", err)}
	}
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if r.Seed == nil {
		fail("missing seed (the run is not reproducible without it)")
	}
	if r.N < 2 {
		fail("n = %d, want >= 2", r.N)
	}
	if r.Un < 1 || r.Ue < 1 {
		fail("un = %d, ue = %d, want >= 1", r.Un, r.Ue)
	}
	if r.PoolSize < 2 {
		fail("pool_size = %d, want >= 2", r.PoolSize)
	}
	if r.Trials < 1 {
		fail("trials = %d, want >= 1", r.Trials)
	}
	if r.Warmup == nil {
		fail("missing warmup")
	} else if *r.Warmup < 0 {
		fail("warmup = %d, want >= 0", *r.Warmup)
	}
	if len(r.Mixes) == 0 {
		fail("no mixes")
	}
	if r.Deterministic == nil {
		fail("missing deterministic")
	} else if !*r.Deterministic {
		fail("deterministic = false: the double run diverged")
	}
	if r.Hash == "" {
		fail("missing hash")
	}
	claim := false
	for i, m := range r.Mixes {
		if m.Spammers == nil || m.Colluders == nil {
			fail("mix %d: missing spammers/colluders", i)
			continue
		}
		if *m.Spammers < 0 || *m.Colluders < 0 {
			fail("mix %d: negative adversary count", i)
		}
		for _, arm := range trustArms {
			st, ok := m.Arms[arm]
			if !ok {
				fail("mix %d: missing arm %q", i, arm)
				continue
			}
			if st.RetentionPct == nil || st.MeanCost == nil {
				fail("mix %d arm %q: missing retention_pct or mean_cost", i, arm)
				continue
			}
			if *st.RetentionPct < 0 || *st.RetentionPct > 100 {
				fail("mix %d arm %q: retention %g outside [0, 100]", i, arm, *st.RetentionPct)
			}
			if *st.MeanCost <= 0 {
				fail("mix %d arm %q: mean cost %g, want > 0", i, arm, *st.MeanCost)
			}
		}
		if g, gr, hy := m.Arms["gold"], m.Arms["graph"], m.Arms["hybrid"]; *m.Colluders > 0 &&
			g.RetentionPct != nil && gr.RetentionPct != nil && hy.RetentionPct != nil &&
			*g.RetentionPct <= 90 && (*gr.RetentionPct >= 95 || *hy.RetentionPct >= 95) {
			claim = true
		}
	}
	if len(errs) == 0 && !claim {
		fail("no colluder mix shows gold retention <= 90%% with graph or hybrid >= 95%% — the claim the artifact exists to make")
	}
	return errs
}
