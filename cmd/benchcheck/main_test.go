package main

import (
	"strings"
	"testing"
)

const valid = `{
  "cores": 8,
  "gomaxprocs": 8,
  "workers": 4,
  "quick": true,
  "experiments": [
    {"name": "fig3", "seq_seconds": 1.5, "par_seconds": 0.5, "speedup": 3.0}
  ]
}`

func TestCheckValid(t *testing.T) {
	if errs := check([]byte(valid)); len(errs) != 0 {
		t.Fatalf("valid report rejected: %v", errs)
	}
}

func TestCheckZeroSpeedupValid(t *testing.T) {
	// speedup 0 is what benchrun writes when par_seconds rounds to zero.
	rep := strings.Replace(valid, `"speedup": 3.0`, `"speedup": 0`, 1)
	if errs := check([]byte(rep)); len(errs) != 0 {
		t.Fatalf("zero speedup rejected: %v", errs)
	}
}

func TestCheckRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"garbage", "not json", "not valid JSON"},
		{"empty object", "{}", "cores"},
		{"no experiments", `{"cores":1,"gomaxprocs":1,"workers":1,"experiments":[]}`, "no experiments"},
		{"missing name", `{"cores":1,"gomaxprocs":1,"workers":1,
			"experiments":[{"seq_seconds":1,"par_seconds":1,"speedup":1}]}`, "missing name"},
		{"missing timing key", `{"cores":1,"gomaxprocs":1,"workers":1,
			"experiments":[{"name":"fig3","seq_seconds":1,"speedup":1}]}`, "missing par_seconds"},
		{"negative timing", `{"cores":1,"gomaxprocs":1,"workers":1,
			"experiments":[{"name":"fig3","seq_seconds":-1,"par_seconds":1,"speedup":1}]}`, "want >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := check([]byte(tc.data))
			if len(errs) == 0 {
				t.Fatalf("invalid report accepted")
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("errors %v do not mention %q", errs, tc.want)
			}
		})
	}
}
