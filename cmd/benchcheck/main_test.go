package main

import (
	"strings"
	"testing"
)

const valid = `{
  "cores": 8,
  "gomaxprocs": 8,
  "workers": 4,
  "quick": true,
  "experiments": [
    {"name": "fig3", "seq_seconds": 1.5, "par_seconds": 0.5, "speedup": 3.0}
  ]
}`

func TestCheckValid(t *testing.T) {
	if errs := check([]byte(valid)); len(errs) != 0 {
		t.Fatalf("valid report rejected: %v", errs)
	}
}

func TestCheckZeroSpeedupValid(t *testing.T) {
	// speedup 0 is what benchrun writes when par_seconds rounds to zero.
	rep := strings.Replace(valid, `"speedup": 3.0`, `"speedup": 0`, 1)
	if errs := check([]byte(rep)); len(errs) != 0 {
		t.Fatalf("zero speedup rejected: %v", errs)
	}
}

func TestCheckRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"garbage", "not json", "not valid JSON"},
		{"empty object", "{}", "cores"},
		{"no experiments", `{"cores":1,"gomaxprocs":1,"workers":1,"experiments":[]}`, "no experiments"},
		{"missing name", `{"cores":1,"gomaxprocs":1,"workers":1,
			"experiments":[{"seq_seconds":1,"par_seconds":1,"speedup":1}]}`, "missing name"},
		{"missing timing key", `{"cores":1,"gomaxprocs":1,"workers":1,
			"experiments":[{"name":"fig3","seq_seconds":1,"speedup":1}]}`, "missing par_seconds"},
		{"negative timing", `{"cores":1,"gomaxprocs":1,"workers":1,
			"experiments":[{"name":"fig3","seq_seconds":-1,"par_seconds":1,"speedup":1}]}`, "want >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := check([]byte(tc.data))
			if len(errs) == 0 {
				t.Fatalf("invalid report accepted")
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("errors %v do not mention %q", errs, tc.want)
			}
		})
	}
}

// validSched is a minimal well-formed sched-matrix report: two GOMAXPROCS
// widths, both schedulers per width, agreeing paid counts, fewer DAG rounds,
// and a paired summary per width with a fast 1-core DAG.
const validSched = `{
  "kind": "sched-matrix",
  "cores": 4, "smoke": false, "n": 2000, "un": 8, "runs": 2, "spin_ns": 500,
  "cells": [
    {"gomaxprocs": 1, "scheduler": "lockstep", "median_seconds": 0.030,
     "runs_seconds": [0.030, 0.031], "logical_rounds": 86, "paid_comparisons": 90000},
    {"gomaxprocs": 1, "scheduler": "dag", "median_seconds": 0.028,
     "runs_seconds": [0.028, 0.029], "logical_rounds": 6, "paid_comparisons": 90000},
    {"gomaxprocs": 4, "scheduler": "lockstep", "median_seconds": 0.020,
     "runs_seconds": [0.020, 0.021], "logical_rounds": 86, "paid_comparisons": 90000},
    {"gomaxprocs": 4, "scheduler": "dag", "median_seconds": 0.012,
     "runs_seconds": [0.012, 0.013], "logical_rounds": 6, "paid_comparisons": 90000}
  ],
  "paired": [
    {"gomaxprocs": 1, "dag_over_lockstep_median": 0.95, "rounds_lockstep": 86, "rounds_dag": 6},
    {"gomaxprocs": 4, "dag_over_lockstep_median": 0.61, "rounds_lockstep": 86, "rounds_dag": 6}
  ]
}`

func TestCheckSchedMatrixValid(t *testing.T) {
	if errs := check([]byte(validSched)); len(errs) != 0 {
		t.Fatalf("valid sched-matrix report rejected: %v", errs)
	}
}

func TestCheckSchedMatrixSmokeRelaxesOneCoreCap(t *testing.T) {
	// A smoke run's tiny workload is noisy: a 40% paired slowdown must pass
	// with "smoke": true and fail without it.
	rep := strings.Replace(validSched, `"dag_over_lockstep_median": 0.95`, `"dag_over_lockstep_median": 1.4`, 1)
	if errs := check([]byte(rep)); len(errs) == 0 {
		t.Fatal("full run with 40% 1-core slowdown accepted")
	}
	rep = strings.Replace(rep, `"smoke": false`, `"smoke": true`, 1)
	if errs := check([]byte(rep)); len(errs) != 0 {
		t.Fatalf("smoke run with 40%% 1-core slowdown rejected: %v", errs)
	}
}

func TestCheckSchedMatrixRejects(t *testing.T) {
	mut := func(old, new string) string {
		s := strings.Replace(validSched, old, new, 1)
		if s == validSched {
			t.Fatalf("mutation %q not applied", old)
		}
		return s
	}
	cases := []struct {
		name string
		data string
		want string
	}{
		{"unknown kind", `{"kind": "nonsense"}`, `unknown report kind "nonsense"`},
		{"no cells", `{"kind": "sched-matrix", "cores": 1, "n": 10, "runs": 1}`, "no cells"},
		{"unknown scheduler", mut(`"scheduler": "dag", "median_seconds": 0.028`,
			`"scheduler": "fifo", "median_seconds": 0.028`), "unknown scheduler"},
		{"zero median", mut(`"median_seconds": 0.030`, `"median_seconds": 0`), "median_seconds"},
		{"runs mismatch", mut(`"runs_seconds": [0.030, 0.031]`, `"runs_seconds": [0.030]`), "runs_seconds, want 2"},
		{"zero rounds", mut(`"logical_rounds": 86, "paid_comparisons": 90000},
    {"gomaxprocs": 1, "scheduler": "dag"`, `"logical_rounds": 0, "paid_comparisons": 90000},
    {"gomaxprocs": 1, "scheduler": "dag"`), "logical_rounds"},
		{"missing scheduler cell", mut(`"scheduler": "dag", "median_seconds": 0.012`,
			`"scheduler": "lockstep", "median_seconds": 0.012`), "missing"},
		{"paid divergence", mut(`"logical_rounds": 6, "paid_comparisons": 90000},
    {"gomaxprocs": 4`, `"logical_rounds": 6, "paid_comparisons": 89999},
    {"gomaxprocs": 4`), "paid comparisons diverge"},
		{"dag more rounds", mut(`"logical_rounds": 6, "paid_comparisons": 90000},
    {"gomaxprocs": 4`, `"logical_rounds": 87, "paid_comparisons": 90000},
    {"gomaxprocs": 4`), "MORE rounds"},
		{"one-core slowdown", mut(`"dag_over_lockstep_median": 0.95`, `"dag_over_lockstep_median": 1.05`),
			"slower than lockstep"},
		{"paired rounds mismatch", mut(`"rounds_dag": 6},
    {"gomaxprocs": 4`, `"rounds_dag": 7},
    {"gomaxprocs": 4`), "rounds_dag"},
		{"missing paired summary", mut(`,
    {"gomaxprocs": 4, "dag_over_lockstep_median": 0.61, "rounds_lockstep": 86, "rounds_dag": 6}`, ``),
			"missing paired summary"},
		{"zero ratio", mut(`"dag_over_lockstep_median": 0.95`, `"dag_over_lockstep_median": 0`),
			"dag_over_lockstep_median"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := check([]byte(tc.data))
			if len(errs) == 0 {
				t.Fatal("invalid sched-matrix report accepted")
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("errors %v do not mention %q", errs, tc.want)
			}
		})
	}
}

// validService is a minimal well-formed service loadtest report.
const validService = `{
  "kind": "service",
  "seed": 1, "jobs": 200, "completed": 200, "failed": 0, "rejected": 17,
  "wall_seconds": 3.5, "jobs_per_sec": 57.1,
  "p50_latency_ms": 80.2, "p99_latency_ms": 310.9,
  "n": 100, "un": 4, "concurrency": 32, "max_concurrent": 8,
  "server": "in-process"
}`

func TestCheckServiceValid(t *testing.T) {
	if errs := check([]byte(validService)); len(errs) != 0 {
		t.Fatalf("valid service report rejected: %v", errs)
	}
}

func TestCheckServiceRejects(t *testing.T) {
	mut := func(old, new string) string {
		s := strings.Replace(validService, old, new, 1)
		if s == validService {
			t.Fatalf("mutation %q not applied", old)
		}
		return s
	}
	cases := []struct {
		name string
		data string
		want string
	}{
		{"missing seed", mut(`"seed": 1, `, ``), "missing seed"},
		{"missing rejected", mut(`, "rejected": 17`, ``), "missing rejected"},
		{"missing throughput", mut(`"jobs_per_sec": 57.1,`, `"jobs_per_sec_typo": 57.1,`), "missing jobs_per_sec"},
		{"missing p99", mut(`, "p99_latency_ms": 310.9`, ``), "missing p99_latency_ms"},
		{"lost work", mut(`"completed": 200`, `"completed": 199`), "completed = 199 of 200"},
		{"failures", mut(`"failed": 0`, `"failed": 3`), "failed = 3"},
		{"quantile inversion", mut(`"p50_latency_ms": 80.2`, `"p50_latency_ms": 400`), "exceeds p99"},
		{"zero throughput", mut(`"jobs_per_sec": 57.1`, `"jobs_per_sec": 0`), "jobs_per_sec"},
		{"no jobs", mut(`"jobs": 200`, `"jobs": 0`), "jobs = 0"},
		{"no server", mut(`"server": "in-process"`, `"server": ""`), "missing server"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := check([]byte(tc.data))
			if len(errs) == 0 {
				t.Fatal("invalid service report accepted")
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("errors %v do not mention %q", errs, tc.want)
			}
		})
	}
}

// validWorkloads is a minimal well-formed mixed-workload loadtest report.
const validWorkloads = `{
  "kind": "workloads",
  "seed": 1, "jobs": 12, "completed": 12, "failed": 0, "rejected": 3,
  "wall_seconds": 0.4, "jobs_per_sec": 30.0,
  "p50_latency_ms": 60.2, "p99_latency_ms": 110.9,
  "n": 80, "un": 4, "concurrency": 16, "max_concurrent": 8,
  "server": "in-process",
  "mix": "max,topk,score",
  "per_mode": {
    "max":   {"jobs": 4, "completed": 4, "failed": 0, "p50_latency_ms": 70.1, "p99_latency_ms": 95.0},
    "topk":  {"jobs": 4, "completed": 4, "failed": 0, "p50_latency_ms": 65.2, "p99_latency_ms": 110.9},
    "score": {"jobs": 4, "completed": 4, "failed": 0, "p50_latency_ms": 55.9, "p99_latency_ms": 86.1}
  }
}`

func TestCheckWorkloadsValid(t *testing.T) {
	if errs := check([]byte(validWorkloads)); len(errs) != 0 {
		t.Fatalf("valid workloads report rejected: %v", errs)
	}
}

func TestCheckWorkloadsRejects(t *testing.T) {
	mut := func(old, new string) string {
		s := strings.Replace(validWorkloads, old, new, 1)
		if s == validWorkloads {
			t.Fatalf("mutation %q not applied", old)
		}
		return s
	}
	cases := []struct {
		name string
		data string
		want string
	}{
		{"missing mix", mut(`"mix": "max,topk,score",`, ``), "missing mix"},
		{"missing per_mode", mut(`"per_mode"`, `"per_mode_typo"`), "missing per_mode"},
		{"unknown mix mode", mut(`"mix": "max,topk,score"`, `"mix": "max,bogus,score"`), "unknown mode"},
		{"mode dropped from per_mode",
			mut(`"topk":  {"jobs": 4, "completed": 4, "failed": 0, "p50_latency_ms": 65.2, "p99_latency_ms": 110.9},`, ``),
			"no per_mode entry"},
		{"per_mode outside mix", mut(`"mix": "max,topk,score"`, `"mix": "max,topk"`), "outside the mix"},
		{"per-mode lost work", mut(`"topk":  {"jobs": 4, "completed": 4`, `"topk":  {"jobs": 4, "completed": 3`), "completed = 3 of 4"},
		{"per-mode failures", mut(`"score": {"jobs": 4, "completed": 4, "failed": 0`, `"score": {"jobs": 4, "completed": 4, "failed": 1`), "failed = 1"},
		{"per-mode quantile inversion", mut(`"p50_latency_ms": 70.1`, `"p50_latency_ms": 700.1`), "exceeds p99"},
		{"jobs do not partition", mut(`"max":   {"jobs": 4`, `"max":   {"jobs": 5`), "per_mode jobs sum"},
		{"missing per-mode fields",
			mut(`{"jobs": 4, "completed": 4, "failed": 0, "p50_latency_ms": 55.9, "p99_latency_ms": 86.1}`, `{"jobs": 4}`),
			"missing completed/failed/latency fields"},
		{"base schema still applies", mut(`"jobs": 12, "completed": 12`, `"jobs": 12, "completed": 11`), "completed = 11 of 12"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := check([]byte(tc.data))
			if len(errs) == 0 {
				t.Fatal("invalid workloads report accepted")
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("errors %v do not mention %q", errs, tc.want)
			}
		})
	}
}

func TestCheckSchedMatrixMissingBaseline(t *testing.T) {
	// Drop both gomaxprocs=1 cells and their paired entry: the matrix must
	// name the missing sequential baseline.
	rep := strings.Replace(validSched, `{"gomaxprocs": 1, "scheduler": "lockstep", "median_seconds": 0.030,
     "runs_seconds": [0.030, 0.031], "logical_rounds": 86, "paid_comparisons": 90000},
    {"gomaxprocs": 1, "scheduler": "dag", "median_seconds": 0.028,
     "runs_seconds": [0.028, 0.029], "logical_rounds": 6, "paid_comparisons": 90000},
    `, "", 1)
	rep = strings.Replace(rep, `{"gomaxprocs": 1, "dag_over_lockstep_median": 0.95, "rounds_lockstep": 86, "rounds_dag": 6},
    `, "", 1)
	errs := check([]byte(rep))
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "gomaxprocs=1 baseline") {
			found = true
		}
	}
	if !found {
		t.Fatalf("errors %v do not mention the missing baseline", errs)
	}
}

// validTrust is a minimal well-formed trust scorer-sweep report.
const validTrust = `{
  "kind": "trust",
  "seed": 2015, "n": 400, "un": 8, "ue": 3,
  "pool_size": 10, "trials": 40, "warmup": 240,
  "mixes": [
    {"spammers": 0, "colluders": 0, "arms": {
      "gold":   {"retention_pct": 100, "mean_cost": 14400.5},
      "graph":  {"retention_pct": 100, "mean_cost": 12400.2},
      "hybrid": {"retention_pct": 100, "mean_cost": 14500.9}
    }},
    {"spammers": 0, "colluders": 3, "arms": {
      "gold":   {"retention_pct": 32.5, "mean_cost": 11300.1},
      "graph":  {"retention_pct": 100, "mean_cost": 12410.7},
      "hybrid": {"retention_pct": 97.5, "mean_cost": 14480.3}
    }}
  ],
  "deterministic": true,
  "hash": "9e619c78d9350c3f"
}`

func TestCheckTrustValid(t *testing.T) {
	if errs := check([]byte(validTrust)); len(errs) != 0 {
		t.Fatalf("valid trust report rejected: %v", errs)
	}
}

func TestCheckTrustRejects(t *testing.T) {
	mut := func(old, new string) string {
		s := strings.Replace(validTrust, old, new, 1)
		if s == validTrust {
			t.Fatalf("mutation %q not applied", old)
		}
		return s
	}
	cases := []struct {
		name string
		data string
		want string
	}{
		{"missing seed", mut(`"seed": 2015, `, ``), "missing seed"},
		{"missing warmup", mut(` "warmup": 240,`, ``), "missing warmup"},
		{"no mixes", mut(`"trials": 40`, `"trials": 0`), "trials = 0"},
		{"missing arm", mut(`"graph":  {"retention_pct": 100, "mean_cost": 12400.2},`, ``), `missing arm "graph"`},
		{"retention out of range", mut(`"retention_pct": 32.5`, `"retention_pct": 132.5`), "outside [0, 100]"},
		{"zero cost", mut(`"mean_cost": 11300.1`, `"mean_cost": 0`), "mean cost 0"},
		{"not deterministic", mut(`"deterministic": true`, `"deterministic": false`), "double run diverged"},
		{"missing determinism", mut(`"deterministic": true,`, ``), "missing deterministic"},
		{"missing hash", mut(`"hash": "9e619c78d9350c3f"`, `"hash": ""`), "missing hash"},
		{"gold did not collapse", mut(`"retention_pct": 32.5`, `"retention_pct": 98.0`), "no colluder mix"},
		{"graph collapsed too", mut(
			`"graph":  {"retention_pct": 100, "mean_cost": 12410.7},
      "hybrid": {"retention_pct": 97.5, "mean_cost": 14480.3}`,
			`"graph":  {"retention_pct": 80, "mean_cost": 12410.7},
      "hybrid": {"retention_pct": 80, "mean_cost": 14480.3}`), "no colluder mix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := check([]byte(tc.data))
			if len(errs) == 0 {
				t.Fatal("invalid trust report accepted")
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("errors %v do not mention %q", errs, tc.want)
			}
		})
	}
}
