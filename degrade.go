package crowdmax

import (
	"time"

	"crowdmax/internal/degrade"
)

// Guarantee is the machine-checkable quality label attached to a Result: the
// distance bound that holds between the returned element and the true
// maximum. Labels order by Strength; a degraded run reports the label of the
// rung that actually produced its answer, never a stronger one.
type Guarantee = degrade.Guarantee

// The guarantee labels of the default quality ladder, strongest first.
const (
	// Guarantee2DeltaE is Theorem 1's deterministic bound d(M, e) ≤ 2δe.
	Guarantee2DeltaE = degrade.Guarantee2DeltaE
	// Guarantee3DeltaEWHP is the randomized bound d(M, e) ≤ 3δe w.h.p.
	Guarantee3DeltaEWHP = degrade.Guarantee3DeltaEWHP
	// Guarantee2DeltaESubset is 2δe over a budget-shrunk candidate subset.
	Guarantee2DeltaESubset = degrade.Guarantee2DeltaESubset
	// GuaranteeDeltaN is the naïve-only majority-vote bound δn.
	GuaranteeDeltaN = degrade.GuaranteeDeltaN
	// GuaranteeNone marks a best-so-far answer with no distance bound.
	GuaranteeNone = degrade.GuaranteeNone
)

// QualityLadder is an ordered list of degradation rungs, strongest first;
// see DefaultQualityLadder for the standard five-rung ladder.
type QualityLadder = degrade.Ladder

// LadderRung is one named policy on a QualityLadder, with its preconditions
// (minimum budget, minimum active experts) and Guarantee label.
type LadderRung = degrade.Rung

// DegradeDecision is one entry of the degradation controller's append-only
// decision log: which rung was chosen at which decision point, and why every
// stronger rung was skipped.
type DegradeDecision = degrade.Decision

// StrongestGuaranteeFor returns the strongest guarantee label the named
// quality rung may honestly attach to an answer, over the standard rung
// names (the DefaultQualityLadder rungs plus the undegraded
// "expert-all-play-all" natural rung). ok is false for unknown names.
// Harnesses and services use it to validate label honesty: a Result whose
// Guarantee is stronger than StrongestGuaranteeFor(Result.Rung) is lying.
func StrongestGuaranteeFor(rung string) (g Guarantee, ok bool) {
	return degrade.StrongestLabel(rung)
}

// DefaultQualityLadder returns the standard ladder, strongest first:
//
//	expert-2maxfind   (2δe)         2-MaxFind over the candidate set S
//	expert-randomized (3δe-whp)     randomized Algorithm 5 over S
//	expert-shrunk     (2δe@subset)  2-MaxFind over a budget-sized sample of S
//	naive-majority    (δn)          all-play-all over S with naïve workers
//	best-so-far       (no bound)    return the current leader, spend nothing
func DefaultQualityLadder() QualityLadder { return degrade.DefaultLadder() }

// DegradeConfig enables graceful degradation: instead of failing a run when
// the expert backend dies, the budget drains, or the deadline closes in, the
// session walks down a declared quality ladder — and back up when a
// quarantined pool heals — and reports the guarantee the answer actually
// achieved in Result.Guarantee. Injected crashes (ErrInjectedCrash) and
// context cancellation stay fatal: crash recovery is Session.Resume's job.
//
// Ladder decisions are deterministic in the session seed and the observed
// comparison stream, so a resumed run replaying a checkpoint lands on the
// same rung with the same decision log.
type DegradeConfig struct {
	// Ladder is the quality ladder to walk; nil uses DefaultQualityLadder().
	Ladder QualityLadder
	// MaxAttempts is how many times one rung may fail before the controller
	// stops retrying it; defaults to 2.
	MaxAttempts int
	// CmpLatency, when > 0, is the per-comparison wall-time estimate used to
	// hold a rung's cost estimate against the context deadline. Zero skips
	// the deadline-versus-cost precondition (a passed deadline still blocks).
	CmpLatency time.Duration
}
