GO ?= go

.PHONY: build test race bench vet all clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Reduced per-figure benchmarks plus the parallel-engine benchmark.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
	$(GO) test -bench=BenchmarkFig3Parallel -run=^$$ ./internal/experiment

vet:
	$(GO) vet ./...

# Regenerate the wall-clock comparison checked in under results/.
results/BENCH_parallel.json: build
	$(GO) run ./cmd/benchrun -quick -parallel=4 -benchout $@ fig3 fig5

clean:
	$(GO) clean ./...
