GO ?= go

# Concurrency-heavy packages CI runs under the race detector.
RACE_PKGS = ./internal/parallel/... ./internal/tournament/... ./internal/cost/... ./internal/obs/... ./internal/dispatch/... ./internal/chaos/... ./internal/checkpoint/... ./internal/degrade/... ./internal/sched/... ./internal/service/... ./internal/faults/... ./internal/trust/...

# Total-coverage floor for the cover target, pinned a few points under the
# measured total so genuine regressions fail without flaking on noise.
COVER_FLOOR = 76.0

.PHONY: build test race bench bench-matrix vet lint ci bench-smoke chaos-smoke soak-smoke server-smoke store-torture loadtest-smoke cover all clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Same package list as the CI race job: once at GOMAXPROCS=1 (interleaving
# forced through a single P) and once at 4 (real parallelism), matching the
# two scheduler regimes the DAG dispatcher runs under.
race:
	GOMAXPROCS=1 $(GO) test -race ./internal/sched/... ./internal/tournament/... ./internal/dispatch/... ./internal/trust/...
	GOMAXPROCS=4 $(GO) test -race $(RACE_PKGS)

# Mirror of .github/workflows/ci.yml: the test job's steps plus the
# benchmark-smoke job. Green here means green there (modulo Go version).
ci: vet lint build test race cover bench-smoke chaos-smoke soak-smoke server-smoke store-torture loadtest-smoke

bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkFig3Parallel -benchtime=1x ./internal/experiment
	$(GO) run ./cmd/benchrun -quick -parallel=2 -benchout /tmp/bench-smoke.json fig3
	$(GO) run ./cmd/benchcheck /tmp/bench-smoke.json
	$(GO) run ./cmd/benchsched -smoke -out /tmp/bench-sched-smoke.json
	$(GO) run ./cmd/benchcheck /tmp/bench-sched-smoke.json results/BENCH_sched.json
	$(GO) run ./cmd/benchrun -quick -trust-out /tmp/bench-trust-smoke.json trust >/dev/null
	$(GO) run ./cmd/benchcheck /tmp/bench-trust-smoke.json results/BENCH_trust.json

# Regenerate the full scheduler matrix checked in under results/ (slow; the
# committed file was produced by exactly this invocation).
bench-matrix:
	$(GO) run ./cmd/benchsched -spin 500ns -runs 15 -out results/BENCH_sched.json
	$(GO) run ./cmd/benchcheck results/BENCH_sched.json

# Crash-and-resume bit-identical check plus a poisoned-pool run: the same
# steps as the CI chaos-smoke job.
chaos-smoke:
	rm -f /tmp/chaos-smoke.ck
	$(GO) run ./cmd/maxcrowd -n 400 -seed 7 -checkpoint /tmp/chaos-smoke-clean.ck >/tmp/chaos-smoke-clean.out
	$(GO) run ./cmd/maxcrowd -n 400 -seed 7 -checkpoint /tmp/chaos-smoke.ck -chaos crash:300 >/dev/null 2>&1; \
		test $$? -ne 0 || { echo "chaos-smoke: crash run exited zero"; exit 1; }
	$(GO) run ./cmd/maxcrowd -n 400 -seed 7 -checkpoint /tmp/chaos-smoke.ck -resume /tmp/chaos-smoke.ck >/tmp/chaos-smoke-resumed.out
	diff /tmp/chaos-smoke-clean.out /tmp/chaos-smoke-resumed.out
	$(GO) run ./cmd/maxcrowd -n 400 -seed 7 -chaos spammer:0.1 >/dev/null
	$(GO) test -run 'TestAdversarySweepRetentionWithHealth' ./internal/experiment
	$(GO) test -run '^$$' -fuzz FuzzCheckpointRoundTrip -fuzztime 10s ./internal/checkpoint

# Graceful-degradation soak: the same steps as the CI soak-smoke job. A run
# whose expert backend dies mid-phase-2 must complete on the naive-majority
# rung and say so, and the soak harness must verify every schedule's
# label-honesty and crash/resume same-rung invariants.
soak-smoke:
	$(GO) run ./cmd/maxcrowd -n 400 -seed 7 -chaos expert-outage:1.0@600+ >/tmp/soak-smoke.out
	grep -q "guarantee: δn (rung naive-majority)" /tmp/soak-smoke.out
	$(GO) run ./cmd/soak -trials 8 -n 300 -seed 1
	$(GO) run ./cmd/soak -trials 3 -n 300 -seed 1 -modes topk,score -plans "none;expert-outage:1.0@800+"

# Service lifecycle end to end: boot maxcrowdd, complete a batch over HTTP
# with honest labels, SIGTERM with work in flight (graceful drain, exit 0),
# restart and finish the interrupted jobs. Same steps as the CI job.
server-smoke:
	./scripts/server-smoke.sh

# Storage-fault torture: 25 kill -9 cycles under injected disk faults (torn
# writes, ENOSPC, failed renames/fsyncs), a poisoned-store boot, then a final
# audit proving zero lost jobs and to-the-cent budget reconciliation. Same
# steps as the CI job.
store-torture:
	./scripts/store-torture.sh

# Loadtest the service in-process — a plain max stream and a mixed
# max/topk/score stream — and gate the artifacts (and the committed ones)
# through the kind:"service" and kind:"workloads" schemas. Same steps as the
# CI job.
loadtest-smoke:
	$(GO) run ./cmd/loadgen -jobs 200 -n 60 -un 4 -concurrency 32 -out /tmp/bench-service-smoke.json
	$(GO) run ./cmd/loadgen -jobs 60 -n 60 -un 4 -concurrency 16 -mix max,topk,score -out /tmp/bench-workloads-smoke.json
	$(GO) run ./cmd/benchcheck /tmp/bench-service-smoke.json /tmp/bench-workloads-smoke.json \
		results/BENCH_service.json results/BENCH_workloads.json

# Total coverage with a pinned floor; coverage.out is the CI artifact.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { \
		if (t+0 < f+0) { printf "cover: total %.1f%% is below the %.1f%% floor\n", t, f; exit 1 } \
		printf "cover: total %.1f%% (floor %.1f%%)\n", t, f }'

# Reduced per-figure benchmarks plus the parallel-engine benchmark.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
	$(GO) test -bench=BenchmarkFig3Parallel -run=^$$ ./internal/experiment

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Both tools are optional: when they are not on
# PATH the target prints a note and succeeds, so `make ci` works on a bare
# toolchain (CI installs them in its own lint job).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

# Regenerate the wall-clock comparison checked in under results/.
results/BENCH_parallel.json: build
	$(GO) run ./cmd/benchrun -quick -parallel=4 -benchout $@ fig3 fig5

clean:
	$(GO) clean ./...
